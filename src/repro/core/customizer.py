"""End-to-end ISA customization drivers.

:class:`IsaCustomizer` turns a compiled program (or a weighted set of
programs — an application *area*) plus a base machine description into a
customized family member: it profiles, enumerates candidate fused
operations, selects under area/encoding budgets, registers the winners in
an extension library, rewrites the program(s) to use them and returns the
extended machine description.

This is the paper's headline flow — "CPUs that are customized to their
use" produced automatically by the toolchain rather than by a hand-built
ASIC design effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.machine import MachineDescription
from ..ir import Module
from .identification import (
    Candidate, EnumerationConfig, identify_candidates,
)
from .library import ExtensionLibrary, global_extension_library
from .rewrite import apply_selection, custom_op_usage, rewrite_with_library
from .selection import SelectionConfig, SelectionResult, select


@dataclass
class CustomizationReport:
    """What the customizer did and what it expects to gain."""

    base_machine: str
    custom_machine: str
    candidates_considered: int = 0
    operations_selected: int = 0
    selected_names: List[str] = field(default_factory=list)
    area_added_kgates: float = 0.0
    opcode_points_used: int = 0
    estimated_cycles_saved: float = 0.0
    sites_rewritten: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        ops = ", ".join(self.selected_names) or "(none)"
        return (
            f"{self.base_machine} -> {self.custom_machine}: "
            f"{self.operations_selected} custom ops [{ops}], "
            f"+{self.area_added_kgates:.1f} kgates, "
            f"~{self.estimated_cycles_saved:.0f} cycles saved (estimate)"
        )


@dataclass
class CustomizationResult:
    """The customized machine plus the rewritten program(s)."""

    machine: MachineDescription
    modules: List[Module]
    library: ExtensionLibrary
    report: CustomizationReport
    selection: SelectionResult

    @property
    def module(self) -> Module:
        """The first (or only) rewritten module."""
        return self.modules[0]


class IsaCustomizer:
    """Automated instruction-set customization for one machine family."""

    def __init__(self, base_machine: MachineDescription,
                 enumeration: Optional[EnumerationConfig] = None,
                 selection_config: Optional[SelectionConfig] = None,
                 library: Optional[ExtensionLibrary] = None) -> None:
        self.base_machine = base_machine
        self.enumeration = enumeration or EnumerationConfig(max_outputs=1)
        self.selection_config = selection_config or SelectionConfig()
        self.library = library if library is not None else global_extension_library()

    # ------------------------------------------------------------------
    # Profiling.
    # ------------------------------------------------------------------
    @staticmethod
    def profile(module: Module, entry: str, *args) -> None:
        """Run the functional simulator to attach a measured profile."""
        from ..sim.functional import FunctionalSimulator

        simulator = FunctionalSimulator(module.clone())
        simulator.run(entry, *args)
        simulator.profile.apply_to_module(module)

    # ------------------------------------------------------------------
    # Single-application customization.
    # ------------------------------------------------------------------
    def customize(self, module: Module, name: Optional[str] = None,
                  profile_entry: Optional[str] = None,
                  profile_args: Tuple = ()) -> CustomizationResult:
        """Customize the ISA for one program (rewrites ``module`` in place)."""
        return self.customize_for_area(
            [(module, 1.0)], name=name,
            profiles={module.name: (profile_entry, profile_args)} if profile_entry else None,
        )

    # ------------------------------------------------------------------
    # Application-area customization (§6.1).
    # ------------------------------------------------------------------
    def customize_for_area(self, weighted_modules: Sequence[Tuple[Module, float]],
                           name: Optional[str] = None,
                           profiles: Optional[Dict[str, Tuple[str, Tuple]]] = None
                           ) -> CustomizationResult:
        """Customize for a weighted set of programs sharing one processor.

        ``weighted_modules`` is a list of ``(module, weight)`` pairs; the
        weight models how much of the product's compute time the program is
        expected to represent.  ``profiles`` optionally maps module names to
        ``(entry_function, args)`` so measured frequencies replace static
        estimates.
        """
        modules = [m for m, _ in weighted_modules]
        if profiles:
            for module in modules:
                spec = profiles.get(module.name)
                if spec and spec[0]:
                    self.profile(module, spec[0], *spec[1])

        # Identify per module, then merge by signature with area weights.
        merged: Dict[str, Candidate] = {}
        for module, weight in weighted_modules:
            for candidate in identify_candidates(module, self.enumeration):
                for occurrence in candidate.occurrences:
                    occurrence.frequency *= weight
                existing = merged.get(candidate.signature)
                if existing is None:
                    merged[candidate.signature] = candidate
                else:
                    existing.occurrences.extend(candidate.occurrences)
        candidates = sorted(merged.values(),
                            key=lambda c: -c.dynamic_count * max(1, c.pattern.size))

        selection = select(candidates, self.base_machine, self.selection_config)

        # Register winners and extend the machine description.
        machine_name = name or f"{self.base_machine.name}+custom"
        machine = self.base_machine.clone(machine_name)
        for candidate in selection.selected:
            entry = self.library.find_by_signature(candidate.signature)
            if entry is None:
                entry = self.library.register(candidate.pattern)
            if not machine.has_custom_op(entry.name):
                machine.add_custom_op(entry.operation)
        machine.notes = (machine.notes + " " if machine.notes else "") + (
            f"customized from {self.base_machine.name} with "
            f"{len(selection.selected)} fused ops"
        )

        # Rewrite every module in the area.
        sites: Dict[str, int] = {}
        for module in modules:
            counts = apply_selection(module, selection.selected, self.library)
            for op_name, count in counts.items():
                sites[op_name] = sites.get(op_name, 0) + count

        report = CustomizationReport(
            base_machine=self.base_machine.name,
            custom_machine=machine.name,
            candidates_considered=len(candidates),
            operations_selected=len(selection.selected),
            selected_names=selection.names(),
            area_added_kgates=selection.area_used_kgates,
            opcode_points_used=selection.opcode_points_used,
            estimated_cycles_saved=selection.estimated_cycles_saved,
            sites_rewritten=sites,
        )
        return CustomizationResult(
            machine=machine, modules=list(modules), library=self.library,
            report=report, selection=selection,
        )

    # ------------------------------------------------------------------
    # Applying an existing customization to new code.
    # ------------------------------------------------------------------
    def apply_to(self, module: Module,
                 machine: Optional[MachineDescription] = None) -> Dict[str, int]:
        """Rewrite ``module`` using the already-registered extensions.

        Only extensions present on ``machine`` (when given) are used, so a
        module can be retargeted to any member of the customized family.
        """
        if machine is None or not machine.custom_ops:
            library = self.library
        else:
            library = ExtensionLibrary()
            for op_name in machine.custom_ops:
                entry = self.library.entry(op_name)
                if entry is not None:
                    library.register(entry.pattern, entry.operation)
        return rewrite_with_library(module, library, self.enumeration)


def customize_isa(module: Module, base_machine: MachineDescription,
                  area_budget_kgates: float = 40.0,
                  max_operations: int = 8,
                  name: Optional[str] = None,
                  library: Optional[ExtensionLibrary] = None) -> CustomizationResult:
    """One-call convenience wrapper around :class:`IsaCustomizer`."""
    customizer = IsaCustomizer(
        base_machine,
        selection_config=SelectionConfig(
            area_budget_kgates=area_budget_kgates, max_operations=max_operations
        ),
        library=library,
    )
    return customizer.customize(module, name=name)
