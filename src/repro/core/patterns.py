"""Dataflow patterns: the portable semantics of custom operations.

A :class:`Pattern` is a small DAG of primitive IR operations with numbered
external inputs and one or more outputs.  Patterns are extracted from
convex cuts of basic-block dataflow graphs by the identification stage,
deduplicated by a canonical signature (so the same computation found in
two kernels is recognised as one candidate), costed by the hardware-datapath
model, matched against other programs by the rewriter, and evaluated by
the simulators to give custom operations their semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir import (
    COMMUTATIVE_OPCODES, Constant, Instruction, IntType, Opcode, VirtualRegister,
)
from ..ir.types import I32

#: Hardware delay of each primitive, in units of one 32-bit adder delay.
#: Used to pipeline-stage a fused datapath: chained primitives inside one
#: custom operation do not pay per-operation issue/writeback overhead, so
#: the fused latency is the ceiling of the summed gate delay.
HW_DELAY = {
    Opcode.ADD: 1.0, Opcode.SUB: 1.0, Opcode.MUL: 2.4,
    Opcode.AND: 0.3, Opcode.OR: 0.3, Opcode.XOR: 0.3, Opcode.NOT: 0.2,
    Opcode.SHL: 0.5, Opcode.SHR: 0.5, Opcode.SAR: 0.5,
    Opcode.MIN: 1.1, Opcode.MAX: 1.1, Opcode.ABS: 1.1, Opcode.NEG: 1.0,
    Opcode.CMPEQ: 0.8, Opcode.CMPNE: 0.8, Opcode.CMPLT: 1.0, Opcode.CMPLE: 1.0,
    Opcode.CMPGT: 1.0, Opcode.CMPGE: 1.0,
    Opcode.SELECT: 0.4, Opcode.MOV: 0.0,
    Opcode.SEXT: 0.1, Opcode.ZEXT: 0.1, Opcode.TRUNC: 0.1,
}

#: Hardware area of each primitive in kgates (32-bit datapath).
HW_AREA_KGATES = {
    Opcode.ADD: 1.6, Opcode.SUB: 1.6, Opcode.MUL: 20.0,
    Opcode.AND: 0.2, Opcode.OR: 0.2, Opcode.XOR: 0.3, Opcode.NOT: 0.1,
    Opcode.SHL: 2.2, Opcode.SHR: 2.2, Opcode.SAR: 2.2,
    Opcode.MIN: 2.0, Opcode.MAX: 2.0, Opcode.ABS: 1.8, Opcode.NEG: 1.6,
    Opcode.CMPEQ: 0.9, Opcode.CMPNE: 0.9, Opcode.CMPLT: 1.2, Opcode.CMPLE: 1.2,
    Opcode.CMPGT: 1.2, Opcode.CMPGE: 1.2,
    Opcode.SELECT: 0.7, Opcode.MOV: 0.0,
    Opcode.SEXT: 0.1, Opcode.ZEXT: 0.1, Opcode.TRUNC: 0.1,
}

#: Adder delays that fit in one pipeline stage of the custom functional
#: unit (slightly more than one, reflecting slack in the base machine's
#: cycle that a single ALU op does not use).
DELAYS_PER_STAGE = 1.3


@dataclass(frozen=True)
class PatternNode:
    """One primitive operation inside a pattern.

    ``operands`` refer either to external inputs (``("in", k)``), to other
    nodes (``("node", j)`` with ``j`` an index into the pattern's node
    list, always smaller than this node's index), or to embedded constants
    (``("const", value)``).
    """

    opcode: Opcode
    operands: Tuple[Tuple, ...]


class PatternError(Exception):
    """Raised when a pattern cannot be built or evaluated."""


class Pattern:
    """A canonical, executable description of a fused computation."""

    def __init__(self, nodes: List[PatternNode], outputs: List[int],
                 num_inputs: int, name: str = "") -> None:
        self.nodes = nodes
        self.outputs = outputs
        self.num_inputs = num_inputs
        self.name = name or f"cop_{abs(hash(self.signature())) % 100_000:05d}"

    # ------------------------------------------------------------------
    # Basic properties.
    # ------------------------------------------------------------------
    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    @property
    def size(self) -> int:
        """Number of primitive operations fused by this pattern."""
        return len(self.nodes)

    def opcode_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for node in self.nodes:
            histogram[node.opcode.value] = histogram.get(node.opcode.value, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Hardware cost model.
    # ------------------------------------------------------------------
    def hardware_latency(self, delays_per_stage: float = DELAYS_PER_STAGE) -> int:
        """Pipeline latency (cycles) of a fused datapath for this pattern."""
        depth: Dict[int, float] = {}
        worst = 0.0
        for index, node in enumerate(self.nodes):
            start = 0.0
            for kind, ref in node.operands:
                if kind == "node":
                    start = max(start, depth[ref])
            finish = start + HW_DELAY.get(node.opcode, 1.0)
            depth[index] = finish
            worst = max(worst, finish)
        return max(1, int(-(-worst // delays_per_stage)))  # ceil division

    def hardware_area_kgates(self) -> float:
        """Synthesis-area estimate of the fused datapath (kgates)."""
        area = sum(HW_AREA_KGATES.get(node.opcode, 1.0) for node in self.nodes)
        # Operand multiplexing / pipeline registers overhead.
        overhead = 0.4 * (self.num_inputs + self.num_outputs) + 0.15 * len(self.nodes)
        return round(area + overhead, 3)

    def software_latency(self, latency_of) -> int:
        """Critical path through the pattern executed as separate ops.

        ``latency_of`` maps an :class:`Opcode` to its per-op latency on the
        *base* machine; this is the per-occurrence upper bound on the cycles
        a custom operation can save when the code is latency-bound.
        """
        depth: Dict[int, int] = {}
        worst = 0
        for index, node in enumerate(self.nodes):
            start = 0
            for kind, ref in node.operands:
                if kind == "node":
                    start = max(start, depth[ref])
            finish = start + latency_of(node.opcode)
            depth[index] = finish
            worst = max(worst, finish)
        return worst

    # ------------------------------------------------------------------
    # Canonical signature.
    # ------------------------------------------------------------------
    def signature(self) -> str:
        """A canonical string identifying the computation.

        Commutative operands are sorted by their sub-expression string, so
        ``a*b + c`` and ``b*a + c`` share a signature.  Input leaves are
        rendered with their input index, which is itself assigned in first-
        appearance order when patterns are built, making signatures stable
        across extraction sites.
        """
        memo: Dict[int, str] = {}

        def render(index: int) -> str:
            if index in memo:
                return memo[index]
            node = self.nodes[index]
            parts = []
            for kind, ref in node.operands:
                if kind == "in":
                    parts.append(f"i{ref}")
                elif kind == "const":
                    parts.append(f"c{ref}")
                else:
                    parts.append(render(ref))
            if node.opcode in COMMUTATIVE_OPCODES:
                parts = sorted(parts)
            text = f"{node.opcode.value}({','.join(parts)})"
            memo[index] = text
            return text

        rendered_outputs = sorted(render(i) for i in self.outputs)
        return f"{self.num_inputs}|" + ";".join(rendered_outputs)

    # ------------------------------------------------------------------
    # Evaluation (semantics for the simulators).
    # ------------------------------------------------------------------
    def evaluate(self, inputs: Sequence[int]):
        """Execute the pattern on integer inputs; returns the first output.

        Multi-output patterns return a tuple.  All arithmetic is wrapped to
        32 bits, matching the simulated machine.
        """
        if len(inputs) != self.num_inputs:
            raise PatternError(
                f"pattern {self.name} expects {self.num_inputs} inputs, "
                f"got {len(inputs)}"
            )
        i32 = I32
        values: Dict[int, int] = {}

        def operand_value(operand) -> int:
            kind, ref = operand
            if kind == "in":
                return int(inputs[ref])
            if kind == "const":
                return int(ref)
            return values[ref]

        for index, node in enumerate(self.nodes):
            ops = [operand_value(o) for o in node.operands]
            values[index] = i32.wrap(_evaluate_primitive(node.opcode, ops))

        results = tuple(values[i] for i in self.outputs)
        return results[0] if len(results) == 1 else results

    # ------------------------------------------------------------------
    # Display.
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return (f"Pattern {self.name}: {self.size} ops, "
                f"{self.num_inputs} in / {self.num_outputs} out, "
                f"hw latency {self.hardware_latency()} cyc, "
                f"{self.hardware_area_kgates():.1f} kgates")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pattern {self.name} {self.signature()}>"


def _evaluate_primitive(opcode: Opcode, ops: List[int]) -> int:
    if opcode is Opcode.ADD:
        return ops[0] + ops[1]
    if opcode is Opcode.SUB:
        return ops[0] - ops[1]
    if opcode is Opcode.MUL:
        return ops[0] * ops[1]
    if opcode is Opcode.AND:
        return ops[0] & ops[1]
    if opcode is Opcode.OR:
        return ops[0] | ops[1]
    if opcode is Opcode.XOR:
        return ops[0] ^ ops[1]
    if opcode is Opcode.SHL:
        return ops[0] << (ops[1] & 31)
    if opcode is Opcode.SHR:
        return (ops[0] & 0xFFFFFFFF) >> (ops[1] & 31)
    if opcode is Opcode.SAR:
        return ops[0] >> (ops[1] & 31)
    if opcode is Opcode.MIN:
        return min(ops[0], ops[1])
    if opcode is Opcode.MAX:
        return max(ops[0], ops[1])
    if opcode is Opcode.ABS:
        return abs(ops[0])
    if opcode is Opcode.NEG:
        return -ops[0]
    if opcode is Opcode.NOT:
        return ~ops[0]
    if opcode is Opcode.CMPEQ:
        return int(ops[0] == ops[1])
    if opcode is Opcode.CMPNE:
        return int(ops[0] != ops[1])
    if opcode is Opcode.CMPLT:
        return int(ops[0] < ops[1])
    if opcode is Opcode.CMPLE:
        return int(ops[0] <= ops[1])
    if opcode is Opcode.CMPGT:
        return int(ops[0] > ops[1])
    if opcode is Opcode.CMPGE:
        return int(ops[0] >= ops[1])
    if opcode is Opcode.SELECT:
        return ops[1] if ops[0] else ops[2]
    if opcode in (Opcode.MOV, Opcode.SEXT, Opcode.ZEXT, Opcode.TRUNC):
        return ops[0]
    raise PatternError(f"opcode {opcode} cannot appear in a pattern")


def pattern_from_cut(instructions: Sequence[Instruction],
                     dfg) -> Tuple[Pattern, List, List[VirtualRegister]]:
    """Build a pattern from a convex cut of a dataflow graph.

    Returns ``(pattern, input_values, output_registers)`` where
    ``input_values`` are the IR values feeding the cut (in the pattern's
    input order) and ``output_registers`` the registers the cut defines for
    consumers outside it.
    """
    cut: Set[Instruction] = set(instructions)
    # Deterministic topological order within the cut: follow block order.
    ordered = [inst for inst in dfg.block.instructions if inst in cut]

    node_index: Dict[int, int] = {}
    input_order: List = []
    input_keys: Dict = {}
    nodes: List[PatternNode] = []

    def input_slot(value) -> int:
        key = value.id if isinstance(value, VirtualRegister) else ("const", str(value))
        if key not in input_keys:
            input_keys[key] = len(input_order)
            input_order.append(value)
        return input_keys[key]

    producers = {inst.dest.id: inst for inst in ordered if inst.dest is not None}

    for inst in ordered:
        operands: List[Tuple] = []
        for operand in inst.operands:
            if isinstance(operand, VirtualRegister):
                producer = producers.get(operand.id)
                if producer is not None and producer in cut and id(producer) in node_index:
                    operands.append(("node", node_index[id(producer)]))
                else:
                    operands.append(("in", input_slot(operand)))
            elif isinstance(operand, Constant) and isinstance(operand.value, int):
                operands.append(("const", operand.value))
            else:
                operands.append(("in", input_slot(operand)))
        node_index[id(inst)] = len(nodes)
        nodes.append(PatternNode(inst.opcode, tuple(operands)))

    output_registers = dfg.subgraph_outputs(cut)
    # Preserve definition order for outputs.
    output_registers.sort(key=lambda reg: next(
        i for i, inst in enumerate(ordered) if inst.dest is not None and inst.dest.id == reg.id
    ))
    outputs = []
    for reg in output_registers:
        for inst in reversed(ordered):
            if inst.dest is not None and inst.dest.id == reg.id:
                outputs.append(node_index[id(inst)])
                break

    pattern = Pattern(nodes, outputs, num_inputs=len(input_order))
    return pattern, input_order, output_registers
