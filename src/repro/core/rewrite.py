"""Rewriting IR to use selected custom operations.

Two entry points:

* :func:`apply_selection` replaces the recorded occurrences of selected
  candidates inside the module they were identified in.
* :func:`rewrite_with_library` re-discovers occurrences of *already
  registered* extensions in a fresh module (the application-area /
  ISA-family use case: a library built from one set of programs applied to
  a program the customizer never saw).

Both only rewrite single-output occurrences — the machine's custom
operations write one register — and both verify that collapsing the cut
into one instruction cannot reorder it past a consumer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..arch.machine import MachineDescription
from ..ir import BasicBlock, Instruction, Module, Opcode, VirtualRegister
from ..ir.instructions import custom as make_custom
from .identification import Candidate, EnumerationConfig, Occurrence, enumerate_block_cuts
from .library import ExtensionLibrary
from .patterns import pattern_from_cut


class RewriteError(Exception):
    """Raised when an occurrence cannot be safely rewritten."""


def _rewrite_occurrence(block: BasicBlock, occurrence: Occurrence,
                        op_name: str) -> bool:
    """Replace one occurrence with a CUSTOM instruction; returns success."""
    if len(occurrence.output_registers) != 1:
        return False
    cut = [inst for inst in occurrence.instructions if inst.block is block]
    if len(cut) != len(occurrence.instructions):
        return False  # some instructions were already rewritten or moved
    cut_ids = {id(inst) for inst in cut}
    indices = [i for i, inst in enumerate(block.instructions) if id(inst) in cut_ids]
    if len(indices) != len(cut):
        return False
    last_index = max(indices)
    output = occurrence.output_registers[0]

    # Safety: no instruction between the cut members and the insertion point
    # may read the output register (it would see the value too early), and
    # no instruction before the insertion point may read it after the first
    # cut definition is removed.
    first_index = min(indices)
    for position in range(first_index, last_index):
        inst = block.instructions[position]
        if id(inst) in cut_ids:
            continue
        if output in inst.uses():
            return False

    # Build the replacement and splice it in at the last cut position.
    replacement = make_custom(output, op_name, list(occurrence.input_values))
    replacement.block = block
    new_instructions: List[Instruction] = []
    for i, inst in enumerate(block.instructions):
        if id(inst) in cut_ids:
            if i == last_index:
                new_instructions.append(replacement)
            continue
        new_instructions.append(inst)
    block.instructions = new_instructions
    return True


def apply_selection(module: Module, selected: Sequence[Candidate],
                    library: ExtensionLibrary) -> Dict[str, int]:
    """Rewrite all recorded occurrences of ``selected`` candidates in place.

    Every selected pattern must already be registered in ``library`` (the
    registration assigns the operation name).  Returns a map from operation
    name to the number of sites rewritten.
    """
    rewritten: Dict[str, int] = {}
    for candidate in selected:
        entry = library.find_by_signature(candidate.signature)
        if entry is None:
            raise RewriteError(
                f"candidate {candidate.pattern.name} is not registered in the library"
            )
        count = 0
        for occurrence in candidate.occurrences:
            if occurrence.function not in module.functions:
                continue
            function = module.get_function(occurrence.function)
            try:
                block = function.get_block(occurrence.block)
            except KeyError:
                continue
            if _rewrite_occurrence(block, occurrence, entry.name):
                count += 1
        rewritten[entry.name] = count
    return rewritten


def rewrite_with_library(module: Module, library: ExtensionLibrary,
                         config: Optional[EnumerationConfig] = None) -> Dict[str, int]:
    """Find and rewrite occurrences of registered extensions in ``module``.

    Used when applying an existing customized ISA to a program that was not
    part of the customization set (§6.1: the processor was tailored to an
    application *area*; new code in that area should still benefit).
    Larger patterns are matched first so overlapping smaller ones do not
    steal their instructions.
    """
    if len(library) == 0:
        return {}
    config = config or EnumerationConfig()
    rewritten: Dict[str, int] = {name: 0 for name in library.names()}

    for function in module.functions.values():
        for block in list(function.blocks):
            # Re-enumerate until no further match applies in this block
            # (each rewrite changes the instruction list).
            progress = True
            while progress:
                progress = False
                matches = []
                for cut, dfg in enumerate_block_cuts(block, config):
                    pattern, inputs, outputs = pattern_from_cut(
                        [inst for inst in block.instructions if inst in cut], dfg
                    )
                    entry = library.find_by_signature(pattern.signature())
                    if entry is None or len(outputs) != 1:
                        continue
                    matches.append((pattern.size, cut, inputs, outputs, entry))
                matches.sort(key=lambda m: -m[0])
                for size, cut, inputs, outputs, entry in matches:
                    occurrence = Occurrence(
                        function=function.name,
                        block=block.name,
                        instructions=[inst for inst in block.instructions if inst in cut],
                        frequency=block.frequency,
                        input_values=inputs,
                        output_registers=outputs,
                    )
                    if _rewrite_occurrence(block, occurrence, entry.name):
                        rewritten[entry.name] += 1
                        progress = True
                        break
    return {name: count for name, count in rewritten.items() if count}


def custom_op_usage(module: Module) -> Dict[str, int]:
    """Static count of CUSTOM instructions per operation name."""
    usage: Dict[str, int] = {}
    for function in module.functions.values():
        for inst in function.instructions():
            if inst.opcode is Opcode.CUSTOM:
                usage[inst.custom_op] = usage.get(inst.custom_op, 0) + 1
    return usage
