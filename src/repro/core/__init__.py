"""Automated instruction-set customization (the paper's core contribution).

The flow is: profile -> enumerate convex dataflow cuts -> merge by
canonical pattern signature -> select fused operations under area and
opcode-space budgets -> register them in an extension library -> rewrite
the program(s) -> extend the machine description.
"""

from .patterns import (
    DELAYS_PER_STAGE, HW_AREA_KGATES, HW_DELAY, Pattern, PatternError,
    PatternNode, pattern_from_cut,
)
from .library import (
    ExtensionEntry, ExtensionLibrary, global_extension_library,
    reset_global_library,
)
from .identification import (
    Candidate, EnumerationConfig, Occurrence, enumerate_block_cuts,
    filter_overlapping_occurrences, identify_candidates,
)
from .selection import (
    SelectionConfig, SelectionResult, select, select_greedy, select_knapsack,
)
from .rewrite import (
    RewriteError, apply_selection, custom_op_usage, rewrite_with_library,
)
from .customizer import (
    CustomizationReport, CustomizationResult, IsaCustomizer, customize_isa,
)

__all__ = [
    "DELAYS_PER_STAGE", "HW_AREA_KGATES", "HW_DELAY", "Pattern",
    "PatternError", "PatternNode", "pattern_from_cut",
    "ExtensionEntry", "ExtensionLibrary", "global_extension_library",
    "reset_global_library",
    "Candidate", "EnumerationConfig", "Occurrence", "enumerate_block_cuts",
    "filter_overlapping_occurrences", "identify_candidates",
    "SelectionConfig", "SelectionResult", "select", "select_greedy",
    "select_knapsack",
    "RewriteError", "apply_selection", "custom_op_usage",
    "rewrite_with_library",
    "CustomizationReport", "CustomizationResult", "IsaCustomizer",
    "customize_isa",
]
