"""Experiment manifests: provenance-complete, replayable run records.

An :class:`ExperimentManifest` ties one executed request to everything
needed to re-produce — and then *verify* — its numbers:

* the request JSON (round-trippable through
  :func:`repro.api.requests.request_from_dict`);
* the content fingerprints of every compile stage the request touched
  (``provenance.stages`` — the bit-identity contract of the pipeline);
* a deterministic digest of the response (everything but provenance:
  oracle outputs, cycles, latencies, rows) plus its fingerprint hash;
* the engine/fidelity that served it, the environment it ran in
  (python, platform, engine knobs), and the git revision;
* named metrics with *tolerance declarations next to each value* —
  fidelity metrics must reproduce exactly, perf metrics within a band.

Manifests come from three places and all replay the same way:

* ``python -m repro record`` executes a request and writes one;
* every journaled root request (``Session.execute`` under ``--obs
  trace --journal``) is a manifest event — :func:`manifest_from_event`
  lifts it out;
* the benchmark harness (``benchmarks/conftest.write_baseline``)
  shares :func:`capture_env` / :func:`git_revision` / the metric-spec
  vocabulary for the ``BENCH_*.json`` baselines.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

#: manifest format version; bump on breaking change.
MANIFEST_SCHEMA_VERSION = 1

#: the ``kind`` marker of a standalone manifest file.
MANIFEST_KIND = "experiment.manifest"

#: default wall-clock tolerance: fresh elapsed must stay within
#: ``recorded * band + slack`` seconds.  The band is deliberately wide
#: (shared CI runners are noisy) and the absolute slack keeps
#: sub-100ms recordings from producing meaninglessly tight gates.
DEFAULT_ELAPSED_BAND = 10.0
DEFAULT_ELAPSED_SLACK_S = 1.0

#: response keys never compared on replay (wall-clock, cache state,
#: worker/trace identity all live under provenance).
VOLATILE_RESPONSE_KEYS = frozenset({"provenance"})


class ManifestError(ValueError):
    """A manifest (or journal event) cannot be used for replay."""


def capture_env() -> Dict[str, str]:
    """The environment facts a manifest records (informational)."""
    import platform

    env = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
    for knob in ("REPRO_ENGINE", "REPRO_OBS", "REPRO_NATIVE_CC"):
        value = os.environ.get(knob)
        if value:
            env[knob] = value
    return env


@functools.lru_cache(maxsize=4)
def git_revision(cwd: Optional[str] = None) -> str:
    """The current git revision ("" when not in a repo / git missing)."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return ""
    return result.stdout.strip() if result.returncode == 0 else ""


def canonical_json(data) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def fingerprint_of(data) -> str:
    """Content fingerprint of any JSON-representable value."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


def response_digest(response) -> Dict[str, object]:
    """The deterministic part of a response (oracle outputs + numbers).

    Everything the simulated system computes — values, cycles,
    latencies, energy, rows — is deterministic for a fixed request;
    only provenance (wall-clock, cache hits, worker/trace ids) varies
    run to run, so it is excluded.
    """
    data = response.to_dict() if hasattr(response, "to_dict") \
        else dict(response)
    return {key: value for key, value in data.items()
            if key not in VOLATILE_RESPONSE_KEYS}


def stage_fingerprints(provenance) -> List[Dict[str, str]]:
    """The ``(stage, key)`` fingerprint sequence of a provenance record.

    ``hit`` and ``seconds`` are dropped: cache temperature and timing
    legitimately differ between record and replay; the content keys
    must not.
    """
    if provenance is None:
        return []
    data = provenance.to_dict() if hasattr(provenance, "to_dict") \
        else dict(provenance)
    return [{"stage": str(record.get("stage", "")),
             "key": str(record.get("key", ""))}
            for record in data.get("stages", []) or []]


# ----------------------------------------------------------------------
# Metric specs: a value plus the tolerance declared next to it.
# ----------------------------------------------------------------------

def metric_spec(value, *, kind: str = "perf", direction: str = "higher",
                band: Optional[float] = None, floor: Optional[float] = None,
                ceiling: Optional[float] = None,
                slack: float = 0.0) -> Dict[str, object]:
    """One named metric with its tolerance declaration.

    ``kind``      — "fidelity" (must reproduce) or "perf" (noisy).
    ``direction`` — which way is better ("higher" or "lower").
    ``band``      — relative tolerance factor versus the recorded value
                    (a regression beyond ``value*band`` / ``value/band``
                    fails); None makes the metric report-only unless a
                    floor/ceiling is declared.
    ``floor`` / ``ceiling`` — absolute acceptance bounds (scale-safe:
                    they hold even when baseline and fresh runs used
                    different problem sizes).
    ``slack``     — absolute slack added to the relative band (keeps
                    tiny recorded values from over-tightening it).
    """
    if kind not in ("perf", "fidelity"):
        raise ValueError(f"metric kind must be perf|fidelity, not {kind!r}")
    if direction not in ("higher", "lower"):
        raise ValueError(
            f"metric direction must be higher|lower, not {direction!r}")
    spec: Dict[str, object] = {
        "value": value, "kind": kind, "direction": direction,
    }
    if band is not None:
        spec["band"] = float(band)
    if floor is not None:
        spec["floor"] = float(floor)
    if ceiling is not None:
        spec["ceiling"] = float(ceiling)
    if slack:
        spec["slack"] = float(slack)
    return spec


def check_metric(spec: Mapping[str, object], fresh,
                 *, relative_ok: bool = True) -> Tuple[bool, str]:
    """Check a fresh value against a metric spec's declared tolerance.

    Returns ``(ok, note)``.  ``relative_ok=False`` disables the
    relative band (used when baseline and fresh runs are at different
    scales and only the absolute floor/ceiling bounds are meaningful).
    """
    recorded = spec.get("value")
    try:
        fresh_f = float(fresh)
    except (TypeError, ValueError):
        return False, f"fresh value {fresh!r} is not numeric"
    floor = spec.get("floor")
    if floor is not None and fresh_f < float(floor) - 1e-9:
        return False, f"{fresh_f:g} below the declared floor {floor:g}"
    ceiling = spec.get("ceiling")
    if ceiling is not None and fresh_f > float(ceiling) + 1e-9:
        return False, f"{fresh_f:g} above the declared ceiling {ceiling:g}"
    band = spec.get("band")
    slack = float(spec.get("slack", 0.0) or 0.0)
    if band is not None and relative_ok:
        try:
            recorded_f = float(recorded)
        except (TypeError, ValueError):
            return False, f"recorded value {recorded!r} is not numeric"
        if spec.get("direction") == "lower":
            limit = recorded_f * float(band) + slack
            if fresh_f > limit:
                return False, (f"{fresh_f:g} beyond the band "
                               f"(recorded {recorded_f:g} x {band:g} "
                               f"+ {slack:g} = {limit:g})")
        else:
            limit = recorded_f / float(band) - slack
            if fresh_f < limit:
                return False, (f"{fresh_f:g} beyond the band "
                               f"(recorded {recorded_f:g} / {band:g} "
                               f"- {slack:g} = {limit:g})")
    if spec.get("kind") == "fidelity" and band is None \
            and floor is None and ceiling is None:
        try:
            recorded_f = float(recorded)
        except (TypeError, ValueError):
            return False, f"recorded value {recorded!r} is not numeric"
        if abs(fresh_f - recorded_f) > 1e-9 * max(1.0, abs(recorded_f)):
            return False, (f"fidelity metric drifted: recorded "
                           f"{recorded_f:g}, fresh {fresh_f:g}")
    return True, "ok"


def default_replay_metrics(elapsed_s: float,
                           band: Optional[float] = None
                           ) -> Dict[str, Dict[str, object]]:
    """The metric set every manifest carries: end-to-end wall clock."""
    return {"elapsed_s": metric_spec(
        round(float(elapsed_s), 6), kind="perf", direction="lower",
        band=band if band is not None else DEFAULT_ELAPSED_BAND,
        slack=DEFAULT_ELAPSED_SLACK_S)}


# ----------------------------------------------------------------------
# The manifest itself.
# ----------------------------------------------------------------------

@dataclass
class ExperimentManifest:
    """One replayable experiment: request + fingerprints + expectations."""

    name: str = ""
    #: request kind ("run", "matrix", ...).
    kind: str = ""
    #: the round-trippable request JSON.
    request: Dict[str, object] = field(default_factory=dict)
    #: ordered ``{stage, key}`` content fingerprints to reproduce.
    fingerprints: List[Dict[str, str]] = field(default_factory=list)
    #: deterministic response digest (oracle outputs and numbers).
    response: Dict[str, object] = field(default_factory=dict)
    #: sha256 of the canonical response digest.
    response_fingerprint: str = ""
    engine: str = ""
    fidelity: str = ""
    #: named metrics, each with its tolerance declaration.
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    env: Dict[str, object] = field(default_factory=dict)
    git_rev: str = ""
    created_ts: float = 0.0
    source: str = ""
    trace_id: str = ""
    schema_version: int = MANIFEST_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["manifest_kind"] = MANIFEST_KIND
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ExperimentManifest":
        payload = dict(data)
        marker = payload.pop("manifest_kind", MANIFEST_KIND)
        if marker != MANIFEST_KIND:
            raise ManifestError(
                f"not an experiment manifest (manifest_kind={marker!r})")
        version = payload.get("schema_version", MANIFEST_SCHEMA_VERSION)
        if not isinstance(version, int) \
                or not 1 <= version <= MANIFEST_SCHEMA_VERSION:
            raise ManifestError(
                f"unsupported manifest schema_version {version!r} (this "
                f"build understands 1..{MANIFEST_SCHEMA_VERSION})")
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        manifest = cls(**{k: v for k, v in payload.items() if k in known})
        if not manifest.request or not manifest.request.get("kind"):
            raise ManifestError(
                f"manifest {manifest.name or '?'} has no replayable "
                f"request payload")
        return manifest

    def save(self, path: str, indent: int = 2) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=indent) + "\n")

    @classmethod
    def load(cls, path: str) -> "ExperimentManifest":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def manifest_from_response(request, response, *, name: str = "",
                           source: str = "record",
                           elapsed_s: Optional[float] = None,
                           band: Optional[float] = None,
                           extra_metrics: Optional[Mapping] = None
                           ) -> ExperimentManifest:
    """Build a manifest from an executed request/response pair."""
    provenance = getattr(response, "provenance", None)
    digest = response_digest(response)
    request_dict = request.to_dict() if hasattr(request, "to_dict") \
        else dict(request)
    kind = str(request_dict.get("kind", ""))
    if elapsed_s is None:
        elapsed_s = float(getattr(provenance, "elapsed_s", 0.0) or 0.0)
    metrics = default_replay_metrics(elapsed_s, band=band)
    if extra_metrics:
        metrics.update({str(k): dict(v) for k, v in extra_metrics.items()})
    return ExperimentManifest(
        name=name or f"{kind}-{fingerprint_of(request_dict)[:12]}",
        kind=kind, request=request_dict,
        fingerprints=stage_fingerprints(provenance),
        response=digest, response_fingerprint=fingerprint_of(digest),
        engine=str(getattr(provenance, "engine", "") or ""),
        fidelity=str(getattr(provenance, "fidelity", "") or ""),
        metrics=metrics, env=capture_env(), git_rev=git_revision(),
        created_ts=time.time(), source=source,
        trace_id=str(getattr(provenance, "trace_id", "") or ""))


def manifest_from_event(event: Mapping[str, object]) -> ExperimentManifest:
    """Lift an experiment manifest out of a journal manifest event.

    Degraded events (flagged by :meth:`repro.obs.ObsJournal.manifest`
    when a section was not JSON-round-trippable) are refused — their
    request payloads cannot be trusted to replay bit-identically.
    """
    if event.get("event") != "manifest":
        raise ManifestError(
            f"journal event is a {event.get('event')!r}, not a manifest")
    if event.get("degraded"):
        raise ManifestError(
            "journal manifest is flagged degraded (non-round-trippable "
            f"sections): {event['degraded']}")
    request = event.get("request")
    if not isinstance(request, Mapping) or not request.get("kind"):
        raise ManifestError(
            "journal manifest carries no replayable request payload")
    provenance = event.get("provenance") or {}
    response = event.get("response")
    response = dict(response) if isinstance(response, Mapping) else {}
    metrics = event.get("replay_metrics")
    if not isinstance(metrics, Mapping):
        elapsed = 0.0
        if isinstance(provenance, Mapping):
            try:
                elapsed = float(provenance.get("elapsed_s", 0.0) or 0.0)
            except (TypeError, ValueError):
                elapsed = 0.0
        metrics = default_replay_metrics(elapsed)
    trace_id = str(event.get("trace_id", "") or "")
    kind = str(event.get("kind") or request.get("kind") or "")
    return ExperimentManifest(
        name=f"{kind}-{trace_id[:12] or 'journal'}",
        kind=kind, request=dict(request),
        fingerprints=stage_fingerprints(provenance),
        response=response,
        response_fingerprint=str(event.get("response_fingerprint", "")
                                 or (fingerprint_of(response)
                                     if response else "")),
        engine=str(provenance.get("engine", "")
                   if isinstance(provenance, Mapping) else ""),
        fidelity=str(provenance.get("fidelity", "")
                     if isinstance(provenance, Mapping) else ""),
        metrics={str(k): dict(v) for k, v in metrics.items()},
        env=dict(event.get("env") or {}),
        git_rev=str(event.get("git_rev", "") or ""),
        created_ts=float(event.get("ts", 0.0) or 0.0)
        if _is_number(event.get("ts")) else 0.0,
        source=str(event.get("source", "") or ""),
        trace_id=trace_id)


def _is_number(value) -> bool:
    try:
        float(value)
    except (TypeError, ValueError):
        return False
    return True


def load_manifests(path: str, trace_id: Optional[str] = None
                   ) -> Tuple[List[ExperimentManifest], List[str]]:
    """Manifests from a file, journal, or directory.

    Accepts a standalone manifest ``.json``, a journal ``.jsonl`` (all
    manifest events, optionally filtered by ``trace_id``), or a
    directory (every ``*.json``/``*.jsonl`` inside, sorted).  Returns
    ``(manifests, problems)`` where ``problems`` names events/files
    that were flagged (degraded journal events among them) — callers
    decide whether a flagged source fails the run.
    """
    manifests: List[ExperimentManifest] = []
    problems: List[str] = []
    if os.path.isdir(path):
        names = sorted(entry for entry in os.listdir(path)
                       if entry.endswith((".json", ".jsonl")))
        for name in names:
            sub, sub_problems = load_manifests(
                os.path.join(path, name), trace_id)
            manifests.extend(sub)
            problems.extend(sub_problems)
        return manifests, problems

    if path.endswith(".jsonl"):
        from ..obs import read_journal

        events = read_journal(path, trace_id=trace_id)
        for event in events:
            if event.get("event") != "manifest":
                continue
            try:
                manifests.append(manifest_from_event(event))
            except ManifestError as exc:
                problems.append(f"{path}: {exc}")
        return manifests, problems

    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        problems.append(f"{path}: {exc}")
        return manifests, problems
    if not isinstance(data, Mapping):
        problems.append(f"{path}: not a JSON object")
        return manifests, problems
    try:
        if data.get("event") == "manifest":
            manifest = manifest_from_event(data)
        else:
            manifest = ExperimentManifest.from_dict(data)
        if trace_id is None or manifest.trace_id == trace_id:
            manifests.append(manifest)
    except ManifestError as exc:
        problems.append(f"{path}: {exc}")
    return manifests, problems
