"""The CI regression gate: replay manifests, compare BENCH baselines.

Two checks compose one gate:

* **manifest replay** — every experiment manifest under the given
  targets is re-executed through :func:`~repro.replay.replay_manifest`;
  a fingerprint/oracle mismatch (fidelity) fails outright, a metric
  outside its declared band (perf) fails too.  Degraded journal events
  — flagged by :meth:`repro.obs.ObsJournal.manifest` when a section was
  not round-trippable — fail the gate explicitly rather than being
  skipped.
* **BENCH comparison** — fresh ``BENCH_*.json`` files (the benchmark
  harness output) are compared against stored baselines using the
  tolerance declared *next to each metric in the baseline*.  Absolute
  floors/ceilings always apply; relative bands only when both runs
  were at the same scale (the ``shrunk`` flag matches), so a shrunk CI
  smoke run is never held to full-run numbers it cannot reach.

``python -m repro gate`` wires this up and exits non-zero on any
regression; the report JSON is the CI artifact.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .manifest import check_metric, load_manifests
from .replay import ReplayReport, replay_manifest

#: gate report format version.
GATE_SCHEMA_VERSION = 1


@dataclass
class GateEntry:
    """One gated item: a replayed manifest or one compared BENCH metric."""

    target: str
    check: str            # "replay" | "bench" | "load"
    ok: bool
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"target": self.target, "check": self.check, "ok": self.ok,
                "detail": dict(self.detail)}


@dataclass
class GateReport:
    """Everything one gate run checked, pass/fail per entry."""

    entries: List[GateEntry] = field(default_factory=list)
    started_ts: float = 0.0

    @property
    def ok(self) -> bool:
        return bool(self.entries) and all(e.ok for e in self.entries)

    @property
    def failures(self) -> List[GateEntry]:
        return [e for e in self.entries if not e.ok]

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "gate.report",
            "schema_version": GATE_SCHEMA_VERSION,
            "ok": self.ok,
            "checked": len(self.entries),
            "failed": len(self.failures),
            "entries": [entry.to_dict() for entry in self.entries],
        }

    def render(self) -> str:
        lines = []
        for entry in self.entries:
            mark = "ok " if entry.ok else "FAIL"
            note = entry.detail.get("note", "")
            lines.append(f"[{mark}] {entry.check:<6} {entry.target}"
                         + (f"  {note}" if note and not entry.ok else ""))
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"gate: {verdict} ({len(self.entries)} checks, "
                     f"{len(self.failures)} failed)")
        return "\n".join(lines)


def gate_manifests(targets: List[str], *, trace_id: Optional[str] = None,
                   session=None) -> Tuple[List[GateEntry],
                                          List[ReplayReport]]:
    """Replay every manifest under ``targets``; one entry per manifest."""
    entries: List[GateEntry] = []
    reports: List[ReplayReport] = []
    for target in targets:
        manifests, problems = load_manifests(target, trace_id=trace_id)
        for problem in problems:
            entries.append(GateEntry(
                target=target, check="load", ok=False,
                detail={"note": problem}))
        for manifest in manifests:
            report = replay_manifest(manifest, session=session)
            reports.append(report)
            note = ""
            if not report.ok:
                reasons = ([report.error] if report.error else []) \
                    + report.fingerprint_mismatches[:3] \
                    + report.response_mismatches[:3] \
                    + [f"{d.name}: {d.note}" for d in report.deltas
                       if not d.ok][:3]
                note = "; ".join(r for r in reasons if r)
            entries.append(GateEntry(
                target=manifest.name, check="replay", ok=report.ok,
                detail={"note": note, "report": report.to_dict()}))
    return entries, reports


def compare_bench(baseline: Mapping[str, object],
                  fresh: Mapping[str, object],
                  name: str = "") -> List[GateEntry]:
    """Per-metric entries comparing a fresh BENCH file to its baseline.

    The tolerance lives in the *baseline*: each metric's declared
    floor/ceiling always applies; the relative band only when the two
    runs are at the same scale (``shrunk`` flags match).
    """
    entries: List[GateEntry] = []
    metrics = baseline.get("metrics")
    if not isinstance(metrics, Mapping) or not metrics:
        entries.append(GateEntry(
            target=name, check="bench", ok=True,
            detail={"note": "baseline declares no gated metrics "
                            "(pre-manifest schema); skipped"}))
        return entries
    comparable = bool(baseline.get("shrunk")) == bool(fresh.get("shrunk"))
    fresh_metrics = fresh.get("metrics")
    fresh_metrics = fresh_metrics if isinstance(fresh_metrics, Mapping) \
        else {}
    for metric_name, spec in sorted(metrics.items()):
        target = f"{name}:{metric_name}"
        fresh_spec = fresh_metrics.get(metric_name)
        if not isinstance(fresh_spec, Mapping) or "value" not in fresh_spec:
            entries.append(GateEntry(
                target=target, check="bench", ok=False,
                detail={"note": "metric missing from the fresh baseline"}))
            continue
        ok, note = check_metric(spec, fresh_spec.get("value"),
                                relative_ok=comparable)
        entries.append(GateEntry(
            target=target, check="bench", ok=ok,
            detail={"note": note if not ok else
                    ("ok" if comparable else "ok (absolute bounds only: "
                     "baseline/fresh at different scales)"),
                    "recorded": spec.get("value"),
                    "fresh": fresh_spec.get("value"),
                    "kind": spec.get("kind", "perf")}))
    return entries


def gate_bench_dirs(baseline_dir: str, fresh_dir: str) -> List[GateEntry]:
    """Compare every ``BENCH_*.json`` common to both directories."""
    entries: List[GateEntry] = []
    try:
        names = sorted(entry for entry in os.listdir(baseline_dir)
                       if entry.startswith("BENCH_")
                       and entry.endswith(".json"))
    except OSError as exc:
        return [GateEntry(target=baseline_dir, check="bench", ok=False,
                          detail={"note": f"cannot list baselines: {exc}"})]
    if not names:
        return [GateEntry(target=baseline_dir, check="bench", ok=False,
                          detail={"note": "no BENCH_*.json baselines"})]
    for bench in names:
        fresh_path = os.path.join(fresh_dir, bench)
        if not os.path.exists(fresh_path):
            entries.append(GateEntry(
                target=bench, check="bench", ok=True,
                detail={"note": "no fresh run for this baseline; skipped"}))
            continue
        try:
            with open(os.path.join(baseline_dir, bench),
                      encoding="utf-8") as handle:
                baseline = json.load(handle)
            with open(fresh_path, encoding="utf-8") as handle:
                fresh = json.load(handle)
        except (OSError, ValueError) as exc:
            entries.append(GateEntry(
                target=bench, check="bench", ok=False,
                detail={"note": f"unreadable: {exc}"}))
            continue
        entries.extend(compare_bench(baseline, fresh, name=bench))
    return entries


def run_gate(targets: Optional[List[str]] = None, *,
             bench_baseline: Optional[str] = None,
             bench_fresh: str = ".",
             trace_id: Optional[str] = None,
             session=None) -> GateReport:
    """The full gate: manifest replays plus BENCH baseline comparison."""
    report = GateReport(started_ts=time.time())
    if targets:
        entries, _ = gate_manifests(targets, trace_id=trace_id,
                                    session=session)
        report.entries.extend(entries)
    if bench_baseline:
        report.entries.extend(gate_bench_dirs(bench_baseline, bench_fresh))
    return report
