"""Re-execute an experiment manifest and verify it reproduced.

:func:`replay_manifest` rebuilds the manifest's request, executes it
through a fresh :class:`~repro.api.Session`, and checks three layers:

* **stage fingerprints** — the ``(stage, key)`` content-hash sequence
  of the compile pipeline must match bit-identically (cache hits and
  timings may differ; the artifacts must not);
* **response digest** — every deterministic response field (oracle
  outputs, cycles, latencies, rows) must match the recorded digest;
* **metrics** — each recorded metric is compared against the fresh run
  within its declared tolerance band (wall clock is perf-banded,
  fidelity metrics must reproduce exactly).

The first two are the *fidelity* gate (any mismatch fails outright);
the metric bands are the *perf* gate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from .manifest import (
    ExperimentManifest, check_metric, fingerprint_of, response_digest,
    stage_fingerprints,
)

#: cap on reported mismatch paths (the report is for humans).
MAX_MISMATCHES = 25


def _diff(recorded, fresh, path: str, out: List[str]) -> None:
    """Collect the paths where two JSON values differ."""
    if len(out) >= MAX_MISMATCHES:
        return
    if isinstance(recorded, Mapping) and isinstance(fresh, Mapping):
        for key in sorted(set(recorded) | set(fresh)):
            if key not in recorded:
                out.append(f"{path}.{key}: unexpected in fresh response")
            elif key not in fresh:
                out.append(f"{path}.{key}: missing from fresh response")
            else:
                _diff(recorded[key], fresh[key], f"{path}.{key}", out)
            if len(out) >= MAX_MISMATCHES:
                return
        return
    if isinstance(recorded, list) and isinstance(fresh, list):
        if len(recorded) != len(fresh):
            out.append(f"{path}: length {len(recorded)} -> {len(fresh)}")
            return
        for index, (a, b) in enumerate(zip(recorded, fresh)):
            _diff(a, b, f"{path}[{index}]", out)
            if len(out) >= MAX_MISMATCHES:
                return
        return
    if isinstance(recorded, float) and isinstance(fresh, (int, float)):
        if abs(recorded - float(fresh)) <= 1e-12 * max(
                1.0, abs(recorded), abs(float(fresh))):
            return
    if recorded != fresh:
        out.append(f"{path}: {recorded!r} -> {fresh!r}")


@dataclass
class MetricDelta:
    """One metric compared between the manifest and the fresh run."""

    name: str
    recorded: object
    fresh: object
    ok: bool
    kind: str = "perf"
    note: str = "ok"

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "recorded": self.recorded,
                "fresh": self.fresh, "ok": self.ok,
                "kind": self.kind, "note": self.note}


@dataclass
class ReplayReport:
    """What one manifest replay found."""

    name: str = ""
    kind: str = ""
    ok: bool = False
    fidelity_ok: bool = False
    perf_ok: bool = False
    fingerprints_expected: int = 0
    fingerprint_mismatches: List[str] = field(default_factory=list)
    response_mismatches: List[str] = field(default_factory=list)
    deltas: List[MetricDelta] = field(default_factory=list)
    elapsed_s: float = 0.0
    error: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name, "kind": self.kind, "ok": self.ok,
            "fidelity_ok": self.fidelity_ok, "perf_ok": self.perf_ok,
            "fingerprints_expected": self.fingerprints_expected,
            "fingerprint_mismatches": list(self.fingerprint_mismatches),
            "response_mismatches": list(self.response_mismatches),
            "metrics": [delta.to_dict() for delta in self.deltas],
            "elapsed_s": round(self.elapsed_s, 6),
            "error": self.error,
        }

    def render(self) -> str:
        status = "ok" if self.ok else "FAIL"
        lines = [f"replay {self.name} [{self.kind}] ... {status} "
                 f"({self.elapsed_s * 1e3:.1f} ms, "
                 f"{self.fingerprints_expected} stage fingerprints)"]
        if self.error:
            lines.append(f"  error     : {self.error}")
        for mismatch in self.fingerprint_mismatches:
            lines.append(f"  fingerprint mismatch: {mismatch}")
        for mismatch in self.response_mismatches:
            lines.append(f"  response mismatch   : {mismatch}")
        for delta in self.deltas:
            mark = "ok " if delta.ok else "OUT"
            lines.append(f"  metric {delta.name:<24} [{mark}] recorded "
                         f"{delta.recorded!r} fresh {delta.fresh!r}"
                         + ("" if delta.ok else f"  ({delta.note})"))
        return "\n".join(lines)


def _resolve_metric(name: str, spec: Mapping[str, object], provenance,
                    digest: Mapping[str, object], elapsed_s: float):
    """The fresh value a manifest metric compares against."""
    if name == "elapsed_s":
        return elapsed_s
    path = spec.get("path")
    if isinstance(path, str) and path:
        value: object = digest
        for part in path.split("."):
            if not isinstance(value, Mapping) or part not in value:
                return None
            value = value[part]
        return value
    return digest.get(name)


def replay_manifest(manifest: ExperimentManifest, *,
                    session=None) -> ReplayReport:
    """Re-execute one manifest and compare against its expectations."""
    from ..api.requests import request_from_dict
    from ..api.session import Session

    report = ReplayReport(
        name=manifest.name, kind=manifest.kind,
        fingerprints_expected=len(manifest.fingerprints))
    try:
        request = request_from_dict(manifest.request)
    except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
        report.error = f"request does not round-trip: {exc}"
        return report

    own_session = session is None
    if own_session:
        session = Session(name=f"replay-{manifest.kind}")
    started = time.perf_counter()
    try:
        response = session.execute(request)
    except Exception as exc:  # noqa: BLE001
        report.error = f"replay execution failed: {exc}"
        report.elapsed_s = time.perf_counter() - started
        return report
    finally:
        if own_session:
            session.close()
    report.elapsed_s = time.perf_counter() - started

    provenance = getattr(response, "provenance", None)
    fresh_fps = stage_fingerprints(provenance)
    recorded_fps = [(str(f.get("stage", "")), str(f.get("key", "")))
                    for f in manifest.fingerprints]
    fresh_pairs = [(f["stage"], f["key"]) for f in fresh_fps]
    if recorded_fps != fresh_pairs:
        if len(recorded_fps) != len(fresh_pairs):
            report.fingerprint_mismatches.append(
                f"stage count {len(recorded_fps)} -> {len(fresh_pairs)}")
        for index, (recorded, fresh) in enumerate(
                zip(recorded_fps, fresh_pairs)):
            if recorded != fresh:
                report.fingerprint_mismatches.append(
                    f"stage[{index}] {recorded[0]}: {recorded[1][:16]} -> "
                    f"{fresh[0]}: {fresh[1][:16]}")
            if len(report.fingerprint_mismatches) >= MAX_MISMATCHES:
                break

    fresh_digest = response_digest(response)
    if manifest.response:
        if manifest.response_fingerprint and \
                fingerprint_of(fresh_digest) == manifest.response_fingerprint:
            pass  # bit-identical by hash; no need to walk the tree
        else:
            _diff(manifest.response, fresh_digest, "response",
                  report.response_mismatches)
            if not report.response_mismatches \
                    and manifest.response_fingerprint:
                report.response_mismatches.append(
                    "response fingerprint differs but no field-level "
                    "mismatch found (non-canonical manifest?)")

    for name, spec in sorted(manifest.metrics.items()):
        fresh_value = _resolve_metric(name, spec, provenance, fresh_digest,
                                      report.elapsed_s)
        if fresh_value is None:
            report.deltas.append(MetricDelta(
                name=name, recorded=spec.get("value"), fresh=None,
                ok=False, kind=str(spec.get("kind", "perf")),
                note="metric not present in fresh run"))
            continue
        ok, note = check_metric(spec, fresh_value)
        report.deltas.append(MetricDelta(
            name=name, recorded=spec.get("value"), fresh=fresh_value,
            ok=ok, kind=str(spec.get("kind", "perf")), note=note))

    fidelity_deltas_ok = all(
        d.ok for d in report.deltas if d.kind == "fidelity")
    report.fidelity_ok = (not report.fingerprint_mismatches
                          and not report.response_mismatches
                          and not report.error
                          and fidelity_deltas_ok)
    report.perf_ok = all(d.ok for d in report.deltas if d.kind == "perf")
    report.ok = report.fidelity_ok and report.perf_ok
    return report


def replay_all(manifests: List[ExperimentManifest], *,
               session=None) -> List[ReplayReport]:
    """Replay a manifest list (shared session when one is passed)."""
    return [replay_manifest(manifest, session=session)
            for manifest in manifests]
