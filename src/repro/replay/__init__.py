"""``repro.replay`` — replayable experiment manifests + regression gates.

The layer that turns the benchmark suite into a contract: every
benchmark run and journaled request becomes a provenance-complete
:class:`ExperimentManifest` (request JSON + stage fingerprints +
response digest + env + git revision + tolerance-banded metrics) that
:func:`replay_manifest` re-executes through a fresh Session, asserting
bit-identical compile fingerprints and oracle outputs and reporting
per-metric deltas.  :func:`run_gate` is the CI entry: it replays
stored manifests and compares fresh ``BENCH_*.json`` numbers against
baselines, failing on fidelity regressions outright and on perf
regressions outside each metric's declared band.

CLI: ``python -m repro record | replay | gate``.
"""

from .manifest import (
    DEFAULT_ELAPSED_BAND, MANIFEST_KIND, MANIFEST_SCHEMA_VERSION,
    ExperimentManifest, ManifestError, capture_env, check_metric,
    default_replay_metrics, fingerprint_of, git_revision, load_manifests,
    manifest_from_event, manifest_from_response, metric_spec,
    response_digest, stage_fingerprints,
)
from .replay import MetricDelta, ReplayReport, replay_all, replay_manifest
from .gate import (
    GATE_SCHEMA_VERSION, GateEntry, GateReport, compare_bench,
    gate_bench_dirs, gate_manifests, run_gate,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION", "MANIFEST_KIND", "DEFAULT_ELAPSED_BAND",
    "ExperimentManifest", "ManifestError",
    "capture_env", "git_revision", "fingerprint_of", "response_digest",
    "stage_fingerprints", "metric_spec", "check_metric",
    "default_replay_metrics", "manifest_from_event",
    "manifest_from_response", "load_manifests",
    "MetricDelta", "ReplayReport", "replay_manifest", "replay_all",
    "GATE_SCHEMA_VERSION", "GateEntry", "GateReport",
    "compare_bench", "gate_bench_dirs", "gate_manifests", "run_gate",
]
