"""The cross-process artifact store shared by daemon, workers and shims.

:class:`DiskArtifactStore` implements the ``(stage, key)`` protocol of
:class:`repro.pipeline.store.SupportsArtifactStore` on top of a shared
directory, so every process pointed at the same root — the daemon, its
worker pool, a CLI session, the deprecation shims — sees one
compile/trace/evaluation cache.  It extends the in-process
:class:`~repro.pipeline.store.ArtifactStore` (which stays the private
fast path: memory LRU in front, per-process counters) with:

* **forced persistence** — every get/put consults the disk layer, not
  just the stages that opt in, so any picklable artifact crosses
  process boundaries (unpicklable payloads degrade to memory-only,
  exactly like the parent's best-effort disk layer);
* **content fingerprints** — each entry file carries a SHA-256 of its
  pickle body; a mismatch (truncation, corruption, torn write from a
  dying process) is *detected*, the entry is quarantined under
  ``_quarantine/`` for post-mortems, the per-stage ``corrupt`` counter
  ticks, and the lookup misses so the artifact is recomputed;
* **atomic writes** — entries are written to a pid-unique temp file and
  ``os.replace``d into place, so readers never observe a partial entry;
* **size-budget LRU eviction** — when the directory exceeds
  ``size_budget_bytes``, least-recently-used entries (by mtime; reads
  re-touch) are removed under an exclusive file lock so concurrent
  sweeps from different processes cannot double-delete or race a
  writer, with per-stage ``disk_evictions`` counters.

Counters remain per-process (each process has its own instance); the
daemon aggregates worker-side counters through task results, which is
how the service reports fleet-wide cache economics.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import time
from typing import Dict, Iterator, List, Optional, Tuple

from ..pipeline.store import ArtifactStore, StageArtifact

try:  # file locking is POSIX-only; elsewhere the store degrades gracefully
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: entry-file magic; bump on incompatible layout changes.
FORMAT_MAGIC = b"repro-art1"

#: directory (under the root) where corrupt entries are preserved.
QUARANTINE_DIR = "_quarantine"

_LOCK_FILE = ".lock"


class DiskArtifactStore(ArtifactStore):
    """Disk-backed, file-locked, fingerprinted ``(stage, key)`` store."""

    def __init__(self, root: str, capacity: Optional[int] = 1024,
                 size_budget_bytes: Optional[int] = None,
                 force_persist: bool = True) -> None:
        root = os.path.abspath(root)
        super().__init__(capacity=capacity, cache_dir=root)
        self.root = root
        self.size_budget_bytes = size_budget_bytes
        #: when True (the default), every lookup and insert uses the
        #: disk layer so all stages — not just those that opt in — are
        #: shared across processes.
        self.force_persist = force_persist
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    # (stage, key) protocol — force the disk layer on.
    # ------------------------------------------------------------------
    def get(self, stage: str, key: str,
            persist: bool = False) -> Optional[StageArtifact]:
        return super().get(stage, key, persist or self.force_persist)

    def put(self, stage: str, key: str, payload: object,
            seconds: float = 0.0, persist: bool = False) -> StageArtifact:
        return super().put(stage, key, payload, seconds=seconds,
                           persist=persist or self.force_persist)

    # ------------------------------------------------------------------
    # Disk layout and locking.
    # ------------------------------------------------------------------
    def _disk_path(self, stage: str, key: str) -> str:
        return os.path.join(self.root, stage, f"{key}.art")

    @contextlib.contextmanager
    def _file_lock(self) -> Iterator[None]:
        """Exclusive cross-process lock over destructive directory ops."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        path = os.path.join(self.root, _LOCK_FILE)
        with open(path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------
    # Entry format: one header line, then the pickle body.
    # ------------------------------------------------------------------
    def _load_disk(self, stage: str, key: str) -> Optional[StageArtifact]:
        path = self._disk_path(stage, key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return None
        header, _, body = blob.partition(b"\n")
        parts = header.split(b" ")
        if (len(parts) != 3 or parts[0] != FORMAT_MAGIC
                or hashlib.sha256(body).hexdigest().encode() != parts[1]):
            self._quarantine(stage, key, path)
            return None
        try:
            payload = pickle.loads(body)
            seconds = float(parts[2])
        except Exception:  # noqa: BLE001 - fingerprint ok, pickle still bad
            self._quarantine(stage, key, path)
            return None
        # Recency for the LRU sweep: reads count as use.
        with contextlib.suppress(OSError):
            os.utime(path, None)
        return StageArtifact(stage=stage, key=key, payload=payload,
                             seconds=seconds, source="disk")

    def _store_disk(self, stage: str, key: str,
                    artifact: StageArtifact) -> None:
        path = self._disk_path(stage, key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            body = pickle.dumps(artifact.payload)
            header = b" ".join([
                FORMAT_MAGIC,
                hashlib.sha256(body).hexdigest().encode(),
                repr(float(artifact.seconds)).encode(),
            ])
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(header + b"\n" + body)
            os.replace(tmp, path)
        except Exception:  # noqa: BLE001 - the disk layer is best effort
            with contextlib.suppress(OSError):
                os.remove(tmp)
            return
        self._evict_to_budget()

    def _quarantine(self, stage: str, key: str, path: str) -> None:
        """Move a failed-fingerprint entry aside and count it."""
        stats = self.stats(stage)
        with self._lock:
            stats.corrupt += 1
        quarantine = os.path.join(self.root, QUARANTINE_DIR)
        destination = os.path.join(quarantine, f"{stage}__{key}.art")
        with self._file_lock():
            try:
                os.makedirs(quarantine, exist_ok=True)
                os.replace(path, destination)
            except OSError:
                # Another process quarantined it first; that is fine.
                pass

    # ------------------------------------------------------------------
    # Size-budget LRU eviction.
    # ------------------------------------------------------------------
    def _disk_entries(self) -> List[Tuple[float, int, str, str]]:
        """(mtime, size, stage, path) for every live entry file."""
        entries: List[Tuple[float, int, str, str]] = []
        for name in os.listdir(self.root):
            stage_dir = os.path.join(self.root, name)
            if name == QUARANTINE_DIR or not os.path.isdir(stage_dir):
                continue
            for entry in os.listdir(stage_dir):
                if not entry.endswith(".art"):
                    continue
                path = os.path.join(stage_dir, entry)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                entries.append((status.st_mtime, status.st_size, name, path))
        return entries

    def disk_bytes(self) -> int:
        """Total size of live entry files (excludes quarantine)."""
        return sum(size for _mtime, size, _stage, _path in
                   self._disk_entries())

    def disk_len(self) -> int:
        """Number of live entry files (excludes quarantine)."""
        return len(self._disk_entries())

    def _evict_to_budget(self) -> None:
        if self.size_budget_bytes is None:
            return
        with self._file_lock():
            entries = sorted(self._disk_entries())
            total = sum(size for _mtime, size, _stage, _path in entries)
            for _mtime, size, stage, path in entries:
                if total <= self.size_budget_bytes:
                    break
                try:
                    os.remove(path)
                except OSError:
                    continue
                total -= size
                stats = self.stats(stage)
                with self._lock:
                    stats.disk_evictions += 1

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Plain-data summary for the daemon's ``describe``/``stats`` ops."""
        return {
            "root": self.root,
            "entries": self.disk_len(),
            "bytes": self.disk_bytes(),
            "size_budget_bytes": self.size_budget_bytes,
            "force_persist": self.force_persist,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DiskArtifactStore({self.root!r}, "
                f"budget={self.size_budget_bytes})")
