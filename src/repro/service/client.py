"""Client side of the service daemon: Session-shaped, future-backed.

:class:`ServiceClient` speaks the framed-JSON protocol to a running
:class:`~repro.service.daemon.ServiceDaemon` and mirrors the
:class:`repro.api.Session` surface: :meth:`execute` blocks for one
request/response round-trip, :meth:`submit` returns a future-backed
:class:`JobHandle`, :meth:`run_batch` submits a mixed request list and
collects responses in order.  Requests go in as the serializable
dataclasses of :mod:`repro.api.requests` (or their dict form) and come
back as the matching response dataclasses, so swapping a ``Session``
for a ``ServiceClient`` is a one-line change.

The module also hosts the **service-backed pipeline** used by the
deprecated ``global_compile_pipeline()`` shims: when the
``REPRO_SERVICE_SOCKET`` environment variable names a live daemon, the
shim compiles against the daemon's shared
:class:`~repro.service.diskstore.DiskArtifactStore` so legacy callers
join the fleet-wide cache instead of a private in-process one.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Sequence

from ..obs import global_tracer, tracing_enabled
from . import protocol

#: environment variable naming the daemon endpoint for implicit clients
#: (the deprecation shims, the CLI's client subcommands).
ENDPOINT_ENV = "REPRO_SERVICE_SOCKET"


class ServiceError(RuntimeError):
    """The daemon rejected an operation (or is unreachable)."""


class JobFailed(ServiceError):
    """A submitted job ended failed or cancelled.

    ``record`` holds the final job journal dict (state, error,
    attempts) for post-mortems.
    """

    def __init__(self, message: str, record: Optional[Dict] = None) -> None:
        super().__init__(message)
        self.record = record or {}


class JobHandle:
    """Future-backed access to one submitted job."""

    def __init__(self, client: "ServiceClient", record: Dict[str, object]
                 ) -> None:
        self.client = client
        self.id = str(record["id"])
        self._record = record

    @property
    def record(self) -> Dict[str, object]:
        return dict(self._record)

    def status(self) -> str:
        """Current job state (refreshes the cached record)."""
        self._record = self.client.status(self.id)
        return str(self._record["state"])

    def done(self) -> bool:
        return self.status() in ("done", "failed", "cancelled")

    def cancel(self) -> bool:
        return self.client.cancel(self.id)

    def result(self, timeout: Optional[float] = None):
        """Block until terminal; the response object, or JobFailed."""
        return self.client.result(self.id, timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobHandle({self.id!r}, state={self._record.get('state')!r})"


class ServiceClient:
    """One connection to a service daemon, usable from one thread at a
    time (ops serialize on an internal lock)."""

    def __init__(self, endpoint: Optional[str] = None,
                 timeout: float = 30.0) -> None:
        endpoint = endpoint or os.environ.get(ENDPOINT_ENV)
        if not endpoint:
            raise ServiceError(
                "no daemon endpoint: pass one or set " + ENDPOINT_ENV)
        self.endpoint = endpoint
        self.timeout = timeout
        self._sock = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Wire plumbing.
    # ------------------------------------------------------------------
    def _call(self, message: Dict[str, object]) -> Dict[str, object]:
        with self._lock:
            try:
                if self._sock is None:
                    self._sock = protocol.connect(self.endpoint,
                                                  timeout=self.timeout)
                protocol.send_frame(self._sock, message)
                reply = protocol.recv_frame(self._sock)
            except (OSError, protocol.ProtocolError) as exc:
                self._drop_connection()
                raise ServiceError(
                    f"daemon at {self.endpoint} unreachable: {exc}") from exc
            if reply is None:
                self._drop_connection()
                raise ServiceError(
                    f"daemon at {self.endpoint} closed the connection")
        if not reply.get("ok"):
            raise ServiceError(str(reply.get("error", "daemon error")))
        return reply

    def _drop_connection(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Daemon introspection.
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._call({"op": "ping"}).get("pong"))

    def describe(self) -> Dict[str, object]:
        return self._call({"op": "describe"})

    def stats(self) -> Dict[str, object]:
        return self._call({"op": "stats"})

    def trace(self, trace_id: str) -> Dict[str, object]:
        """The daemon's stitched view of one trace: spans + journal
        events (see the ``trace`` protocol op)."""
        return self._call({"op": "trace", "id": trace_id})

    def jobs(self, states: Optional[Sequence[str]] = None
             ) -> List[Dict[str, object]]:
        message: Dict[str, object] = {"op": "jobs"}
        if states is not None:
            message["states"] = list(states)
        return list(self._call(message)["jobs"])

    def shutdown(self) -> None:
        """Ask the daemon to stop (queued jobs stay journaled)."""
        self._call({"op": "shutdown"})
        self.close()

    # ------------------------------------------------------------------
    # Jobs (the Session-shaped surface).
    # ------------------------------------------------------------------
    @staticmethod
    def _request_dict(request) -> Dict[str, object]:
        if hasattr(request, "to_dict"):
            return request.to_dict()
        return dict(request)

    def submit(self, request, priority: int = 0,
               max_attempts: int = 3) -> JobHandle:
        """Queue one request on the daemon; returns a JobHandle."""
        message: Dict[str, object] = {
            "op": "submit",
            "request": self._request_dict(request),
            "priority": priority,
            "max_attempts": max_attempts,
        }
        if tracing_enabled():
            # Attach the caller's span context (additive wire field) so
            # the daemon's job span joins this trace.
            context = global_tracer().current_context()
            if context is not None:
                message["trace"] = dict(context)
        reply = self._call(message)
        return JobHandle(self, reply["job"])

    def status(self, job_id: str) -> Dict[str, object]:
        return dict(self._call({"op": "status", "id": job_id})["job"])

    def cancel(self, job_id: str) -> bool:
        return bool(self._call({"op": "cancel", "id": job_id})["cancelled"])

    def result(self, job_id: str, timeout: Optional[float] = None,
               poll_s: float = 0.05):
        """Block until the job is terminal; returns the response object.

        Raises :class:`JobFailed` for failed/cancelled jobs and
        :class:`ServiceError` on timeout.
        """
        from ..api.requests import response_from_dict

        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            reply = self._call({"op": "result", "id": job_id})
            state = reply["state"]
            if state == "done":
                return response_from_dict(reply["response"])
            if state in ("failed", "cancelled"):
                record = reply.get("job", {})
                raise JobFailed(
                    f"job {job_id} {state}: {record.get('error')}",
                    record=record)
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} (state {state})")
            time.sleep(poll_s)

    def execute(self, request, timeout: Optional[float] = None,
                priority: int = 0):
        """Session-shaped blocking execution of one request."""
        tracer = global_tracer()
        kind = getattr(request, "kind", None) or (
            request.get("kind", "request") if isinstance(request, dict)
            else "request")
        with tracer.span("client.execute", endpoint=self.endpoint,
                         kind=str(kind)) as span:
            response = self.submit(
                request, priority=priority).result(timeout=timeout)
            trace_id = span.trace_id
        if trace_id:
            self._ship_spans(tracer, trace_id)
        return response

    def _ship_spans(self, tracer, trace_id: str) -> None:
        """Best-effort: hand the client's finished spans to the daemon
        so one ``trace`` lookup returns the stitched cross-process tree.
        The spans are drained either way; a dead daemon loses only the
        client-side spans, never the request."""
        spans = tracer.take(trace_id)
        if not spans:
            return
        try:
            self._call({"op": "obs.spans", "spans": spans,
                        "source": "client"})
        except ServiceError:
            pass

    def run_batch(self, requests: Sequence,
                  timeout: Optional[float] = None) -> List:
        """Submit a request list; responses in request order."""
        handles = [self.submit(request) for request in requests]
        return [handle.result(timeout=timeout) for handle in handles]


# ----------------------------------------------------------------------
# The service-backed pipeline for the deprecation shims.
# ----------------------------------------------------------------------

_SERVICE_PIPELINE: Optional[tuple] = None
_SERVICE_LOCK = threading.Lock()


def configured_endpoint() -> Optional[str]:
    """The daemon endpoint named by ``REPRO_SERVICE_SOCKET``, if any."""
    return os.environ.get(ENDPOINT_ENV) or None


def service_backed_pipeline():
    """A CompilePipeline over the configured daemon's shared store.

    Returns None when no endpoint is configured or the daemon does not
    answer — callers fall back to their in-process default.  The
    pipeline is cached per endpoint, so repeated shim calls share one
    store handle (and its memory LRU).
    """
    global _SERVICE_PIPELINE
    endpoint = configured_endpoint()
    if endpoint is None:
        return None
    with _SERVICE_LOCK:
        if (_SERVICE_PIPELINE is not None
                and _SERVICE_PIPELINE[0] == endpoint):
            return _SERVICE_PIPELINE[1]
        try:
            with ServiceClient(endpoint, timeout=5.0) as client:
                info = client.describe()
        except ServiceError:
            return None
        from ..pipeline.compile import CompilePipeline
        from .diskstore import DiskArtifactStore

        pipeline = CompilePipeline(
            DiskArtifactStore(str(info["store_dir"])))
        _SERVICE_PIPELINE = (endpoint, pipeline)
        return pipeline


def reset_service_pipeline() -> None:
    """Drop the cached service-backed pipeline (tests, daemon restarts)."""
    global _SERVICE_PIPELINE
    with _SERVICE_LOCK:
        _SERVICE_PIPELINE = None
