"""The framed wire protocol of the job service.

Every connection in :mod:`repro.service` — client ↔ daemon and
daemon ↔ worker alike — speaks the same tiny protocol: a stream of
*frames*, each a 4-byte big-endian length prefix followed by that many
bytes of UTF-8 JSON.  Messages are plain dicts with an ``"op"`` field;
nothing about the framing is service-specific, which is what lets one
listener serve clients and workers (the first frame declares the
``role``) and lets tests drive either side with a raw socket.

Endpoints are strings so they can live in environment variables and
request JSON:

* ``unix:/path/to/daemon.sock`` (or a bare filesystem path) — a unix
  domain socket, the default transport;
* ``tcp:host:port`` — a TCP socket, for crossing machine boundaries.

Frames are bounded (:data:`MAX_FRAME_BYTES`) so a corrupt length prefix
cannot make a peer allocate gigabytes; the payload plane for bulky
artifacts is the shared :class:`~repro.service.diskstore.DiskArtifactStore`,
never the socket.
"""

from __future__ import annotations

import json
import os
import socket
import struct
from typing import Dict, Optional, Tuple, Union

#: hard per-frame ceiling; responses carrying whole exploration tables
#: stay far below this, bulk artifacts travel through the disk store.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed frame: bad length, truncated body, or invalid JSON."""


def parse_endpoint(endpoint: str) -> Union[Tuple[str, str],
                                           Tuple[str, str, int]]:
    """``"unix:/p"``/bare path → ``("unix", path)``;
    ``"tcp:host:port"`` → ``("tcp", host, port)``."""
    if endpoint.startswith("tcp:"):
        host, _, port = endpoint[4:].rpartition(":")
        if not port.isdigit():
            raise ValueError(f"malformed tcp endpoint {endpoint!r} "
                             f"(want tcp:host:port)")
        return ("tcp", host or "127.0.0.1", int(port))
    if endpoint.startswith("unix:"):
        endpoint = endpoint[len("unix:"):]
    if not endpoint:
        raise ValueError("empty service endpoint")
    return ("unix", endpoint)


def listen(endpoint: str, backlog: int = 64) -> socket.socket:
    """Bind and listen on ``endpoint``; returns the listening socket."""
    parsed = parse_endpoint(endpoint)
    if parsed[0] == "tcp":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((parsed[1], parsed[2]))
    else:
        path = parsed[1]
        if os.path.exists(path):
            # A stale socket file from a dead daemon blocks bind();
            # a live daemon would still hold the listener, so probe it.
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(path)
            except OSError:
                os.unlink(path)
            else:
                probe.close()
                raise OSError(f"endpoint {endpoint!r} already has a "
                              f"listening daemon")
            finally:
                probe.close()
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(path)
    sock.listen(backlog)
    return sock


def connect(endpoint: str, timeout: Optional[float] = None) -> socket.socket:
    """Connect to ``endpoint``; the timeout applies to the connect only."""
    parsed = parse_endpoint(endpoint)
    if parsed[0] == "tcp":
        sock = socket.create_connection((parsed[1], parsed[2]),
                                        timeout=timeout)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(parsed[1])
    sock.settimeout(None)
    return sock


def send_frame(sock: socket.socket, message: Dict[str, object]) -> None:
    """Serialize ``message`` and write one length-prefixed frame."""
    data = json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte ceiling")
    sock.sendall(_HEADER.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, object]]:
    """Read one frame; None on a clean EOF at a frame boundary.

    Raises :class:`ProtocolError` on truncation mid-frame, an oversized
    length prefix, or a body that is not a JSON object.  A socket
    timeout configured by the caller propagates as ``socket.timeout``.
    """
    header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame "
            f"(ceiling {MAX_FRAME_BYTES}); stream corrupt?")
    body = _recv_exactly(sock, length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frames must be JSON objects, got {type(message).__name__}")
    return message


def _recv_exactly(sock: socket.socket, count: int) -> Optional[bytes]:
    """``count`` bytes, or None on EOF before the first byte."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
