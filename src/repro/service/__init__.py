"""The persistent service layer: daemon, durable queue, shared store.

``repro.service`` turns the in-process :class:`repro.api.Session` into
a long-lived fleet: a :class:`ServiceDaemon` owns a crash-safe
:class:`DurableQueue` of request jobs and shards fan-out work over N
worker processes, all of which meet in one cross-process
:class:`DiskArtifactStore` — the shared compile/evaluation cache that
makes a warm daemon serve repeated matrices and explorations at cache
speed.  :class:`ServiceClient` is the Session-shaped front door;
``python -m repro serve/submit/status/result/cancel`` is the CLI form.

Results are bit-identical to single-process execution: the shard/merge
rules in :mod:`repro.service.tasks` reproduce the exact iteration
order (and therefore the exact floats) of the in-process paths.
"""

from .client import (
    ENDPOINT_ENV, JobFailed, JobHandle, ServiceClient, ServiceError,
    configured_endpoint, reset_service_pipeline, service_backed_pipeline,
)
from .daemon import ServiceDaemon, ShardedBatch, TaskError, TaskPool
from .diskstore import DiskArtifactStore
from .queue import (
    JOB_SCHEMA_VERSION, JOB_STATES, TERMINAL_STATES, DurableQueue, JobRecord,
    QueueError,
)
from .tasks import CELL_STAGE, cell_key, merge_matrix, shard_matrix
from .worker import WorkerRuntime, worker_loop

__all__ = [
    "ServiceDaemon", "ServiceClient", "JobHandle", "ServiceError",
    "JobFailed", "TaskError", "TaskPool", "ShardedBatch",
    "DiskArtifactStore", "DurableQueue", "JobRecord", "QueueError",
    "JOB_SCHEMA_VERSION", "JOB_STATES", "TERMINAL_STATES",
    "WorkerRuntime", "worker_loop",
    "CELL_STAGE", "cell_key", "shard_matrix", "merge_matrix",
    "ENDPOINT_ENV", "configured_endpoint", "service_backed_pipeline",
    "reset_service_pipeline",
]
