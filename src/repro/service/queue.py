"""The durable job queue behind the service daemon.

Jobs are the unit clients submit: one versioned request-JSON dict (the
wire format of :mod:`repro.api.requests`) plus scheduling metadata.
:class:`DurableQueue` keeps every job journaled on disk so a daemon
crash or restart loses nothing:

* ``jobs/<id>.json`` — one :class:`JobRecord` per job, rewritten
  atomically (pid-unique temp file + ``os.replace``) on every state
  transition, so the on-disk journal is always a complete, valid JSON
  snapshot of the job;
* ``results/<id>.json`` — the response JSON of a finished job, written
  before the record flips to ``done`` so a ``done`` state always has a
  fetchable result.

States move ``queued → running → done|failed``, with ``cancelled``
reachable from ``queued`` and ``running → queued`` on recovery (a job
that was mid-flight when the daemon died is re-queued, its ``attempts``
counter ticking so a poison job cannot crash-loop forever — after
``max_attempts`` it lands in ``failed`` instead).  Scheduling is by
``(priority desc, submission order asc)``.

The queue is the daemon's private state machine; it is process-local
(one daemon owns one queue root) but thread-safe, with a condition
variable so job-runner threads block cheaply on :meth:`claim`.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

#: version of the job-record wire/journal format; bump on breaking change.
JOB_SCHEMA_VERSION = 1

#: every state a job record can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: states from which a job can never move again.
TERMINAL_STATES = ("done", "failed", "cancelled")


class QueueError(RuntimeError):
    """An operation that the queue's state machine does not allow."""


@dataclass
class JobRecord:
    """One submitted job: the request plus its scheduling journal."""

    id: str
    request: Dict[str, object]
    priority: int = 0
    state: str = "queued"
    seq: int = 0
    attempts: int = 0
    max_attempts: int = 3
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: id of the worker/runner that served (or last touched) the job.
    worker: str = ""
    error: Optional[str] = None
    #: True when this record survived a daemon restart while running.
    recovered: bool = False
    #: client-side trace context (``{"trace_id", "span_id"}``) when the
    #: submitter was tracing, so the daemon's job span joins the
    #: client's trace.  Optional and additive: old journals load fine.
    trace: Optional[Dict[str, str]] = None

    @property
    def kind(self) -> str:
        return str(self.request.get("kind", ""))

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": "job", "schema_version": JOB_SCHEMA_VERSION,
        }
        data.update(asdict(self))
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobRecord":
        payload = dict(data)
        kind = payload.pop("kind", "job")
        if kind != "job":
            raise QueueError(f"not a job record: kind={kind!r}")
        version = payload.pop("schema_version", JOB_SCHEMA_VERSION)
        if not isinstance(version, int) or not 1 <= version <= JOB_SCHEMA_VERSION:
            raise QueueError(
                f"unsupported job schema_version {version!r} "
                f"(this build understands 1..{JOB_SCHEMA_VERSION})")
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        record = cls(**{k: v for k, v in payload.items() if k in known})
        if record.state not in JOB_STATES:
            raise QueueError(f"unknown job state {record.state!r}")
        return record


class DurableQueue:
    """Crash-safe priority queue of request jobs, journaled under ``root``."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.results_dir = os.path.join(self.root, "results")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.results_dir, exist_ok=True)
        self._records: Dict[str, JobRecord] = {}
        #: (-priority, seq, id) min-heap of claimable jobs.
        self._heap: List[tuple] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self.recovered: List[str] = self._recover()

    # ------------------------------------------------------------------
    # Journal I/O.
    # ------------------------------------------------------------------
    def _job_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def _result_path(self, job_id: str) -> str:
        return os.path.join(self.results_dir, f"{job_id}.json")

    def _write_json(self, path: str, data: Dict[str, object]) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, sort_keys=True)
        os.replace(tmp, path)

    def _persist(self, record: JobRecord) -> None:
        self._write_json(self._job_path(record.id), record.to_dict())

    def _recover(self) -> List[str]:
        """Load the journal; re-queue jobs that died mid-flight."""
        recovered: List[str] = []
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = JobRecord.from_dict(json.load(handle))
            except (OSError, ValueError, QueueError):
                # A torn journal entry would mean os.replace failed
                # atomicity; treat it as absent rather than poisoning
                # startup.
                continue
            if record.state == "running":
                record.state = "queued"
                record.recovered = True
                record.worker = ""
                self._persist(record)
                recovered.append(record.id)
            self._records[record.id] = record
            self._seq = max(self._seq, record.seq)
            if record.state == "queued":
                heapq.heappush(self._heap,
                               (-record.priority, record.seq, record.id))
        return recovered

    # ------------------------------------------------------------------
    # Submission and claiming.
    # ------------------------------------------------------------------
    def submit(self, request: Mapping[str, object],
               priority: int = 0, max_attempts: int = 3,
               trace: Optional[Mapping[str, str]] = None) -> JobRecord:
        """Journal a new job; returns its record (state ``queued``)."""
        with self._available:
            self._seq += 1
            record = JobRecord(
                id=f"job-{self._seq:06d}", request=dict(request),
                priority=int(priority), seq=self._seq,
                max_attempts=max_attempts, submitted_at=time.time(),
                trace=dict(trace) if trace else None)
            self._persist(record)
            self._records[record.id] = record
            heapq.heappush(self._heap,
                           (-record.priority, record.seq, record.id))
            self._available.notify()
        return record

    def claim(self, timeout: Optional[float] = None,
              worker: str = "") -> Optional[JobRecord]:
        """Pop the best queued job and mark it running; None on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._available:
            while True:
                record = self._pop_queued()
                if record is not None:
                    record.state = "running"
                    record.attempts += 1
                    record.started_at = time.time()
                    record.worker = worker
                    self._persist(record)
                    return record
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._available.wait(remaining)
                else:
                    self._available.wait()

    def _pop_queued(self) -> Optional[JobRecord]:
        # Caller holds the lock.  Entries for jobs that were cancelled
        # (or re-pushed) while heaped are skipped lazily.
        while self._heap:
            _neg_priority, _seq, job_id = heapq.heappop(self._heap)
            record = self._records.get(job_id)
            if record is not None and record.state == "queued":
                return record
        return None

    # ------------------------------------------------------------------
    # Transitions.
    # ------------------------------------------------------------------
    def _require(self, job_id: str) -> JobRecord:
        record = self._records.get(job_id)
        if record is None:
            raise QueueError(f"unknown job {job_id!r}")
        return record

    def finish(self, job_id: str, response: Mapping[str, object]) -> JobRecord:
        """Store the response, then flip the job to ``done``."""
        with self._available:
            record = self._require(job_id)
            if record.state != "running":
                raise QueueError(
                    f"cannot finish job {job_id} in state {record.state!r}")
            # Result first: a 'done' journal entry must always have a
            # fetchable result, even if the daemon dies between writes.
            self._write_json(self._result_path(job_id), dict(response))
            record.state = "done"
            record.finished_at = time.time()
            record.error = None
            self._persist(record)
            return record

    def fail(self, job_id: str, error: str) -> JobRecord:
        """Flip a running job to ``failed`` (terminal)."""
        with self._available:
            record = self._require(job_id)
            if record.state != "running":
                raise QueueError(
                    f"cannot fail job {job_id} in state {record.state!r}")
            record.state = "failed"
            record.finished_at = time.time()
            record.error = error
            self._persist(record)
            return record

    def requeue(self, job_id: str, error: str) -> JobRecord:
        """Put a running job back in line (worker death, shutdown).

        After ``max_attempts`` claims the job fails instead — a job that
        kills every worker it touches must not crash-loop the fleet.
        """
        with self._available:
            record = self._require(job_id)
            if record.state != "running":
                raise QueueError(
                    f"cannot requeue job {job_id} in state {record.state!r}")
            if record.attempts >= record.max_attempts:
                record.state = "failed"
                record.finished_at = time.time()
                record.error = (f"gave up after {record.attempts} attempts; "
                                f"last error: {error}")
                self._persist(record)
                return record
            record.state = "queued"
            record.worker = ""
            record.error = error
            self._persist(record)
            heapq.heappush(self._heap,
                           (-record.priority, record.seq, record.id))
            self._available.notify()
            return record

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; False once it is running or terminal."""
        with self._available:
            record = self._require(job_id)
            if record.state != "queued":
                return False
            record.state = "cancelled"
            record.finished_at = time.time()
            self._persist(record)
            return True

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._require(job_id)

    def result(self, job_id: str) -> Optional[Dict[str, object]]:
        """The stored response dict of a ``done`` job, else None."""
        path = self._result_path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def list(self, states: Optional[Sequence[str]] = None) -> List[JobRecord]:
        with self._lock:
            records = sorted(self._records.values(), key=lambda r: r.seq)
        if states is not None:
            wanted = set(states)
            records = [r for r in records if r.state in wanted]
        return records

    def snapshot(self) -> Dict[str, int]:
        """Per-state job counts (the daemon's ``stats`` op)."""
        counts = {state: 0 for state in JOB_STATES}
        with self._lock:
            for record in self._records.values():
                counts[record.state] += 1
        counts["total"] = len(self._records)
        return counts

    def __len__(self) -> int:
        return len(self._records)
