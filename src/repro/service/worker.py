"""The worker side of the daemon↔worker protocol.

A worker is one isolated runner process (or, for tests and low-overhead
deployments, a thread) that connects back to the daemon's endpoint,
declares ``role: worker``, and then serves framed tasks one at a time:

* ``request`` — execute one full API request on the worker's private
  :class:`~repro.api.Session` (which shares the fleet-wide
  :class:`~repro.service.diskstore.DiskArtifactStore` — including the
  native engine's compiled ``.so`` artifacts, so one worker's JIT
  compile serves every worker), stamping the
  worker id into the response provenance;
* ``matrix`` — one machine's column of an N×M matrix, with per-cell
  memoization in the shared store (stage :data:`~repro.service.tasks.CELL_STAGE`)
  so warm matrices cost one lookup per cell;
* ``evaluate`` — a chunk of design points for an exploration: the
  evaluations land in the shared store under the batch layer's
  ``evaluation`` stage and only the content *keys* travel back over the
  socket (the store is the data plane, the frames are the control
  plane);
* ``population_validate`` — one round-robin slice of a deterministic
  generated population's dual-engine validation pass.

A background thread heartbeats while tasks run, so the daemon can tell
a *slow* worker from a *dead* one; losing the connection (daemon gone)
ends the worker.  :class:`WorkerRuntime` holds all task semantics and
no I/O, so the execution contract is unit-testable without sockets.
"""

from __future__ import annotations

import argparse
import os
import threading
import time
from typing import Dict, List, Optional

from ..obs import global_tracer, metrics_enabled
from . import protocol
from .diskstore import DiskArtifactStore
from .tasks import CELL_STAGE, cell_key

#: env knob: per-task delay in seconds, a deterministic window for the
#: fault-injection tests to kill a worker that is provably mid-job.
TASK_DELAY_ENV = "REPRO_SERVICE_TASK_DELAY_S"


class WorkerRuntime:
    """Task execution semantics, independent of the socket loop."""

    def __init__(self, store: DiskArtifactStore,
                 worker_id: str = "local") -> None:
        from ..api.session import Session

        self.store = store
        self.worker_id = worker_id
        self.session = Session(name=f"svc-{worker_id}", store=store)

    # ------------------------------------------------------------------
    def execute(self, task: Dict[str, object]) -> Dict[str, object]:
        """Serve one task dict; returns a JSON-serializable result."""
        delay = float(os.environ.get(TASK_DELAY_ENV, "0") or 0.0)
        if delay > 0:
            time.sleep(delay)
        kind = task.get("task")
        handler = {
            "request": self._request,
            "matrix": self._matrix,
            "evaluate": self._evaluate,
            "population_validate": self._population_validate,
        }.get(kind)
        if handler is None:
            raise ValueError(f"unknown task kind {kind!r}")
        tracer = global_tracer()
        trace = task.get("trace") if isinstance(task.get("trace"),
                                                dict) else {}
        # Adopt the daemon's span context (propagated in the task frame)
        # so the worker's spans carry the request's trace_id.
        with tracer.adopt(str(trace.get("trace_id", "")),
                          str(trace.get("span_id", ""))):
            with tracer.span("worker.task", worker=self.worker_id,
                             task=str(kind)) as span:
                result = handler(task)
                trace_id = span.trace_id
        # Every result carries the worker's cumulative store counters so
        # the daemon can aggregate fleet-wide cache economics.
        result["store"] = self.store.stats_dict()
        result["worker"] = self.worker_id
        if metrics_enabled():
            # Cumulative registry snapshot (additive wire field): the
            # daemon keeps the latest per worker and merges fleet-wide.
            result["metrics"] = self.session.registry.snapshot()
        if trace_id:
            # Ship (and drain) this task's spans back inside the result
            # frame; the daemon stitches them into its trace buffer.
            result["spans"] = tracer.take(trace_id)
        return result

    # ------------------------------------------------------------------
    # Task handlers.
    # ------------------------------------------------------------------
    def _request(self, task: Dict[str, object]) -> Dict[str, object]:
        from ..api.requests import request_from_dict

        request = request_from_dict(task["request"])
        response = self.session.execute(request)
        if response.provenance is not None:
            response.provenance.worker = self.worker_id
        return {"response": response.to_dict()}

    def _matrix(self, task: Dict[str, object]) -> Dict[str, object]:
        """One machine's matrix column, memoized per cell."""
        from ..api.requests import MatrixRequest, resolve_machine
        from ..toolchain.matrix import run_matrix
        from ..workloads.kernels import KERNELS

        request = MatrixRequest.from_dict(task["request"])
        if len(request.machines) != 1:
            raise ValueError("matrix tasks are sharded to one machine each")
        machine_ref = request.machines[0]
        session = self.session
        size = request.size if request.size is not None else session.size
        seed = request.seed if request.seed is not None else session.seed
        opt_level = (request.opt_level if request.opt_level is not None
                     else session.opt_level)
        fidelity = (request.fidelity if request.fidelity is not None
                    else session.fidelity)
        engine = request.engine if request.engine is not None else session.engine
        if fidelity == "trace":
            # Mirror run_matrix: the one profiled run is always the
            # threaded-code engine; key and report what actually runs.
            engine = "compiled"
        kernels = (sorted(request.kernels) if request.kernels is not None
                   else sorted(KERNELS))

        tracer = global_tracer()
        cells: Dict[str, Dict[str, object]] = {}
        missing: List[str] = []
        for kernel in kernels:
            key = cell_key(machine_ref, kernel, size, seed, opt_level,
                           engine, fidelity)
            with tracer.span("stage.cell", kernel=kernel,
                             machine=str(machine_ref)) as span:
                artifact = self.store.get(CELL_STAGE, key)
                if artifact is not None:
                    span.note(hit=True, key=key[:16])
                    cells[kernel] = artifact.payload
                else:
                    span.note(hit=False, key=key[:16])
                    missing.append(kernel)

        machine = resolve_machine(machine_ref)
        if missing:
            report = run_matrix([machine], kernel_names=missing, size=size,
                                opt_level=opt_level, seed=seed, engine=engine,
                                fidelity=fidelity, pipeline=session.pipeline)
            started = time.perf_counter()
            for cell, row in zip(report.cells, report.to_rows()):
                payload = {
                    "row": row,
                    "correct": cell.correct,
                    "failure": (None if cell.correct else
                                {"machine": cell.machine,
                                 "kernel": cell.kernel,
                                 "error": cell.error}),
                }
                cells[cell.kernel] = payload
                key = cell_key(machine_ref, cell.kernel, size, seed,
                               opt_level, engine, fidelity)
                self.store.put(CELL_STAGE, key, payload,
                               seconds=time.perf_counter() - started)

        rows = [cells[kernel]["row"] for kernel in kernels]
        failures = [cells[kernel]["failure"] for kernel in kernels
                    if cells[kernel]["failure"] is not None]
        return {
            "machines": [machine.name],
            "kernels": kernels,
            "engine": engine,
            "fidelity": fidelity,
            "rows": rows,
            "failures": failures,
            "correct": sum(bool(cells[kernel]["correct"])
                           for kernel in kernels),
        }

    def _evaluate(self, task: Dict[str, object]) -> Dict[str, object]:
        """Evaluate a design-point chunk into the shared store."""
        from ..dse.space import DesignPoint
        from ..exec.batch import BatchEvaluator, EvaluatorSpec

        raw = dict(task["spec"])
        # JSON flattens tuples to lists; the cache key is a repr of the
        # spec, so restore the exact tuple shape the daemon hashed.
        raw["weights"] = tuple((str(kernel), weight)
                               for kernel, weight in raw["weights"])
        spec = EvaluatorSpec(**raw)
        # The spec itself knows whether it rebuilds a kernel-mix or an
        # application-mix evaluator; either way the worker's session
        # pipeline (and its shared store) backs the compilation.
        evaluator = spec.build(pipeline=self.session.pipeline)
        batch = BatchEvaluator(evaluator, workers=0, store=self.store)
        points = [DesignPoint(**point) for point in task["points"]]
        batch.evaluate_many(points)
        return {"keys": [batch.point_key(point) for point in points]}

    def _population_validate(self, task: Dict[str, object]
                             ) -> Dict[str, object]:
        """Validate one round-robin slice of a generated population."""
        from ..api.requests import PopulationRequest
        from ..gen.population import WorkloadPopulation

        request = PopulationRequest.from_dict(task["request"])
        index, shards = int(task["index"]), int(task["shards"])
        population = WorkloadPopulation.generate(
            request.count, seed=request.seed, families=request.families)
        subset = WorkloadPopulation(population.generated[index::shards],
                                    seed=request.seed)
        opt_level = (request.opt_level if request.opt_level is not None
                     else self.session.opt_level)
        with subset:
            validated = subset.validate(size=request.size,
                                        opt_level=opt_level,
                                        pipeline=self.session.pipeline)
        return {"valid": sum(validated.values()), "checked": len(validated)}


# ----------------------------------------------------------------------
# Socket loop.
# ----------------------------------------------------------------------

def _connect_with_retry(endpoint: str, deadline_s: float = 15.0):
    """Workers may start before the daemon's listener; retry briefly."""
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            return protocol.connect(endpoint, timeout=2.0)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


def worker_loop(endpoint: str, store_root: str, worker_id: str,
                heartbeat_s: float = 2.0,
                runtime: Optional[WorkerRuntime] = None) -> None:
    """Connect, register, and serve tasks until told to exit."""
    if runtime is None:
        runtime = WorkerRuntime(DiskArtifactStore(store_root),
                                worker_id=worker_id)
    sock = _connect_with_retry(endpoint)
    send_lock = threading.Lock()
    stop = threading.Event()

    def _send(message: Dict[str, object]) -> None:
        with send_lock:
            protocol.send_frame(sock, message)

    def _heartbeat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                _send({"op": "heartbeat", "worker": worker_id})
            except OSError:
                return

    _send({"op": "hello", "role": "worker", "worker": worker_id,
           "pid": os.getpid()})
    threading.Thread(target=_heartbeat, daemon=True,
                     name=f"svc-{worker_id}-heartbeat").start()
    try:
        while True:
            message = protocol.recv_frame(sock)
            if message is None or message.get("op") == "exit":
                break
            if message.get("op") != "task":
                continue
            task_id = message.get("id")
            try:
                result = runtime.execute(message["task"])
                reply = {"op": "result", "id": task_id, "ok": True,
                         "result": result}
            except Exception as exc:  # noqa: BLE001 - report, keep serving
                reply = {"op": "result", "id": task_id, "ok": False,
                         "error": f"{type(exc).__name__}: {exc}"}
            _send(reply)
    except (OSError, protocol.ProtocolError):
        # The daemon is gone; a worker has no purpose without one.
        pass
    finally:
        stop.set()
        sock.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="one runner process of a repro service daemon")
    parser.add_argument("--endpoint", required=True,
                        help="daemon endpoint (unix:/path or tcp:host:port)")
    parser.add_argument("--store", required=True,
                        help="root of the shared disk artifact store")
    parser.add_argument("--id", default=f"w{os.getpid()}",
                        help="worker id reported to the daemon")
    parser.add_argument("--heartbeat", type=float, default=2.0,
                        help="heartbeat interval in seconds")
    args = parser.parse_args(argv)
    worker_loop(args.endpoint, args.store, args.id,
                heartbeat_s=args.heartbeat)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
