"""The persistent job daemon: durable queue + sharded worker fan-out.

:class:`ServiceDaemon` is the long-lived process of the service layer.
It owns three durable things under one root directory:

* ``queue/`` — the :class:`~repro.service.queue.DurableQueue` journal,
  so submitted jobs survive daemon restarts (running jobs are re-queued
  on recovery, finished results stay fetchable);
* ``store/`` — the shared
  :class:`~repro.service.diskstore.DiskArtifactStore`, the **data
  plane**: workers persist compile artifacts, matrix cells and design
  -point evaluations there, and only content keys travel over sockets;
* ``daemon.sock`` — one framed-JSON endpoint (unix socket by default,
  ``tcp:host:port`` optional) serving both clients and workers: the
  first frame of a connection declares the role.

Fan-out requests are sharded over a pool of N workers (separate
processes by default; in-process threads for tests and zero-install
deployments) through :class:`TaskPool`.  Workers heartbeat while they
compute; a worker that stops heartbeating or drops its connection is
declared dead, its in-flight task is re-queued (bounded attempts), and
— in process mode — a replacement is spawned.  The shard/merge rules
live in :mod:`repro.service.tasks` and preserve bit-identity with a
single-process :meth:`repro.api.Session.execute`.

Exploration requests keep their sequential search loop in the daemon
(strategies are stateful) but fan the design-point evaluations out via
:class:`ShardedBatch`, a :class:`~repro.exec.batch.BatchEvaluator`
whose miss path ships ``evaluate`` tasks to the pool and reads the
resulting evaluations back from the shared store.
"""

from __future__ import annotations

import collections
import contextlib
import itertools
import os
import subprocess
import sys
import threading
import time
from dataclasses import asdict
from typing import Callable, Dict, List, Optional, Sequence

from ..exec.batch import EVALUATION_STAGE, BatchEvaluator
from ..obs import (
    ObsJournal, default_journal_path, global_tracer, metrics_enabled,
    obs_mode, read_journal, tracing_enabled,
)
from ..obs.metrics import merge_snapshot
from . import protocol
from .diskstore import DiskArtifactStore
from .queue import DurableQueue, QueueError
from .tasks import (
    merge_matrix, merge_population, shard_matrix, shard_population,
)


class TaskError(RuntimeError):
    """A pool task failed (worker error, repeated death, or timeout)."""


class _PendingTask:
    """One task in flight through the pool."""

    __slots__ = ("uid", "payload", "event", "result", "error", "attempts",
                 "done")

    def __init__(self, uid: int, payload: Dict[str, object]) -> None:
        self.uid = uid
        self.payload = payload
        self.event = threading.Event()
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None
        self.attempts = 0
        self.done = False


class _WorkerLink:
    """Daemon-side state of one connected worker."""

    def __init__(self, worker_id: str, conn) -> None:
        self.worker_id = worker_id
        self.conn = conn
        self.busy: Optional[_PendingTask] = None
        self.last_seen = time.monotonic()
        self.alive = True


class TaskPool:
    """Dispatches framed tasks to connected workers, with retry on death.

    Retries happen only when a *worker dies* mid-task (connection drop
    or stale heartbeat) — a task the worker itself reports as failed is
    deterministic and fails immediately.  ``on_worker_lost`` lets the
    daemon respawn process workers.
    """

    def __init__(self, task_retries: int = 2,
                 on_worker_lost: Optional[Callable[[str], None]] = None
                 ) -> None:
        self.task_retries = task_retries
        self.on_worker_lost = on_worker_lost
        self._cv = threading.Condition()
        self._tasks: "collections.deque[_PendingTask]" = collections.deque()
        self._links: Dict[str, _WorkerLink] = {}
        self._uid = itertools.count(1)
        self._stopping = False
        self._dispatcher: Optional[threading.Thread] = None
        #: last reported per-worker store counters (cache economics).
        self.worker_stats: Dict[str, Dict[str, object]] = {}
        #: last reported per-worker metrics-registry snapshot (cumulative
        #: per worker; the daemon merges them fleet-wide on demand).
        self.worker_metrics: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, daemon=True, name="svc-dispatch")
        self._dispatcher.start()

    def live_ids(self) -> List[str]:
        with self._cv:
            return [link.worker_id for link in self._links.values()
                    if link.alive]

    def attach(self, conn, hello: Dict[str, object]) -> None:
        """Adopt a freshly connected worker; starts its reader thread."""
        worker_id = str(hello.get("worker", f"anon-{next(self._uid)}"))
        link = _WorkerLink(worker_id, conn)
        with self._cv:
            if self._stopping:
                link.alive = False
            else:
                self._links[worker_id] = link
                self._cv.notify_all()
        if not link.alive:
            with contextlib.suppress(OSError):
                conn.close()
            return
        threading.Thread(target=self._reader, args=(link,), daemon=True,
                         name=f"svc-reader-{worker_id}").start()

    # ------------------------------------------------------------------
    # Task submission.
    # ------------------------------------------------------------------
    def run_many(self, payloads: Sequence[Dict[str, object]],
                 timeout: Optional[float] = None) -> List[Dict[str, object]]:
        """Run tasks through the pool; results in payload order.

        Raises :class:`TaskError` if any task fails, times out, or
        exhausts its worker-death retry budget.
        """
        if tracing_enabled():
            # Ride the caller's span context into each task frame so the
            # worker's spans join this trace (additive wire field).
            context = global_tracer().current_context()
            if context is not None:
                payloads = [dict(payload, trace=dict(context))
                            for payload in payloads]
        pending = [_PendingTask(next(self._uid), payload)
                   for payload in payloads]
        with self._cv:
            self._tasks.extend(pending)
            self._cv.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            for task in pending:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    raise TaskError("task pool timeout")
                if not task.event.wait(remaining):
                    raise TaskError("task pool timeout")
        finally:
            # Detach every unfinished task so a late result (or a task
            # still sitting in the deque) cannot leak into a dead call.
            with self._cv:
                stale = [t for t in pending if not t.event.is_set()]
                for task in stale:
                    task.done = True
                if stale:
                    self._tasks = collections.deque(
                        t for t in self._tasks if not t.done)
        errors = [task.error for task in pending if task.error is not None]
        if errors:
            raise TaskError(errors[0])
        return [task.result for task in pending]

    def run_task(self, payload: Dict[str, object],
                 timeout: Optional[float] = None) -> Dict[str, object]:
        return self.run_many([payload], timeout=timeout)[0]

    # ------------------------------------------------------------------
    # Dispatch and reading.
    # ------------------------------------------------------------------
    def _idle_link(self) -> Optional[_WorkerLink]:
        for link in self._links.values():
            if link.alive and link.busy is None:
                return link
        return None

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                while not self._stopping:
                    while self._tasks and self._tasks[0].done:
                        self._tasks.popleft()
                    if self._tasks and self._idle_link() is not None:
                        break
                    self._cv.wait(0.5)
                if self._stopping:
                    return
                task = self._tasks.popleft()
                link = self._idle_link()
                link.busy = task
            try:
                protocol.send_frame(link.conn, {
                    "op": "task", "id": task.uid, "task": task.payload})
            except OSError:
                self._worker_dead(link, "send failed")

    def _reader(self, link: _WorkerLink) -> None:
        while True:
            try:
                message = protocol.recv_frame(link.conn)
            except (OSError, protocol.ProtocolError):
                message = None
            if message is None:
                self._worker_dead(link, "connection lost")
                return
            link.last_seen = time.monotonic()
            if message.get("op") != "result":
                continue  # heartbeat (or unknown chatter)
            with self._cv:
                task, link.busy = link.busy, None
                self._cv.notify_all()
            if task is None or task.done:
                continue
            if message.get("ok"):
                task.result = message.get("result") or {}
                store = task.result.get("store")
                if isinstance(store, dict):
                    self.worker_stats[link.worker_id] = store
                metrics = task.result.get("metrics")
                if isinstance(metrics, dict):
                    self.worker_metrics[link.worker_id] = metrics
                spans = task.result.get("spans")
                if spans:
                    # Stitch the worker's spans into the daemon's trace
                    # buffer; they already carry the propagated trace_id.
                    global_tracer().ingest(spans)
            else:
                task.error = str(message.get("error", "worker error"))
            task.event.set()

    def _worker_dead(self, link: _WorkerLink, reason: str) -> None:
        with self._cv:
            if not link.alive:
                return
            link.alive = False
            self._links.pop(link.worker_id, None)
            task, link.busy = link.busy, None
            if task is not None and not task.done:
                task.attempts += 1
                if task.attempts > self.task_retries:
                    task.error = (f"worker died {task.attempts} times "
                                  f"running this task ({reason})")
                    task.event.set()
                    task = None
                else:
                    # Head of the line: the task already waited its turn.
                    self._tasks.appendleft(task)
            self._cv.notify_all()
        with contextlib.suppress(OSError):
            link.conn.close()
        if self.on_worker_lost is not None and not self._stopping:
            self.on_worker_lost(link.worker_id)

    def heartbeat_lags(self) -> Dict[str, float]:
        """Seconds since each live worker's last frame (heartbeat lag)."""
        now = time.monotonic()
        with self._cv:
            return {link.worker_id: round(now - link.last_seen, 6)
                    for link in self._links.values() if link.alive}

    def reap_stale(self, heartbeat_timeout: float) -> List[str]:
        """Declare workers with stale heartbeats dead; returns their ids."""
        now = time.monotonic()
        with self._cv:
            stale = [link for link in self._links.values()
                     if link.alive and now - link.last_seen > heartbeat_timeout]
        for link in stale:
            self._worker_dead(link, "heartbeat timeout")
        return [link.worker_id for link in stale]

    def stop(self) -> None:
        with self._cv:
            self._stopping = True
            links = list(self._links.values())
            self._cv.notify_all()
        for link in links:
            with contextlib.suppress(OSError):
                protocol.send_frame(link.conn, {"op": "exit"})
            with contextlib.suppress(OSError):
                link.conn.close()


# ----------------------------------------------------------------------
# Sharded exploration.
# ----------------------------------------------------------------------

class ShardedBatch(BatchEvaluator):
    """A BatchEvaluator whose misses fan out as pool ``evaluate`` tasks.

    Workers persist the evaluations into the shared store under the
    standard ``evaluation`` stage and return only the content keys; the
    daemon reads the payloads back — the store is the data plane, the
    frames carry keys.  A key a worker claims but the daemon cannot
    read (evicted between write and read) falls back to local
    evaluation, so the batch never returns holes.
    """

    def __init__(self, evaluator, pool: TaskPool, store: DiskArtifactStore,
                 chunk: int = 4, task_timeout: Optional[float] = None
                 ) -> None:
        super().__init__(evaluator, workers=0, store=store)
        self.pool = pool
        self.chunk = max(1, chunk)
        self.task_timeout = task_timeout

    def _evaluate_missing(self, items):
        spec = asdict(self.spec)
        spec["weights"] = [list(pair) for pair in self.spec.weights]
        tasks = []
        for start in range(0, len(items), self.chunk):
            part = items[start:start + self.chunk]
            tasks.append({
                "task": "evaluate",
                "spec": spec,
                "points": [asdict(point) for _key, point in part],
            })
        self.pool.run_many(tasks, timeout=self.task_timeout)
        evaluated = []
        for key, point in items:
            artifact = self.store.get(EVALUATION_STAGE, key, persist=True)
            if artifact is not None:
                evaluated.append((key, artifact.payload))
            else:
                evaluated.append((key, self.evaluator.evaluate(
                    point.to_machine(),
                    custom_area_budget=point.custom_area_budget)))
        return evaluated


# ----------------------------------------------------------------------
# The daemon.
# ----------------------------------------------------------------------

class ServiceDaemon:
    """Persistent daemon: durable queue, shared store, worker fan-out."""

    def __init__(self, root: str, *, endpoint: Optional[str] = None,
                 workers: int = 2, worker_mode: str = "process",
                 job_runners: int = 2,
                 store_budget_bytes: Optional[int] = None,
                 heartbeat_timeout: float = 15.0,
                 task_timeout: float = 600.0, task_retries: int = 2,
                 evaluate_chunk: int = 4,
                 worker_env: Optional[Dict[str, str]] = None,
                 name: str = "daemon",
                 journal: Optional[str] = None) -> None:
        if worker_mode not in ("process", "thread"):
            raise ValueError(
                f"worker_mode must be 'process' or 'thread', "
                f"not {worker_mode!r}")
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.name = name
        self.endpoint = endpoint or "unix:" + os.path.join(
            self.root, "daemon.sock")
        self.store_dir = os.path.join(self.root, "store")
        self.workers = max(0, int(workers))
        self.worker_mode = worker_mode
        self.job_runners = max(1, int(job_runners))
        self.heartbeat_timeout = heartbeat_timeout
        self.task_timeout = task_timeout
        self.evaluate_chunk = evaluate_chunk
        self.worker_env = dict(worker_env or {})

        self.store = DiskArtifactStore(self.store_dir,
                                       size_budget_bytes=store_budget_bytes)
        self.queue = DurableQueue(os.path.join(self.root, "queue"))
        self.pool = TaskPool(task_retries=task_retries,
                             on_worker_lost=self._worker_lost)
        #: fleet observability: the daemon counts into its store's
        #: registry (so queue/job metrics export next to cache counters)
        #: and journals one manifest per finished job when tracing.
        self.registry = self.store.registry
        self.journal = ObsJournal(
            journal or default_journal_path()
            or os.path.join(self.root, "obs.jsonl"))
        self.session = self._make_session()

        self._listener = None
        self._threads: List[threading.Thread] = []
        self._procs: Dict[str, subprocess.Popen] = {}
        self._worker_seq = itertools.count(1)
        self._client_conns: List[object] = []
        self._state_lock = threading.Lock()
        self._stopping = False
        self._started = False

    # ------------------------------------------------------------------
    def _make_session(self):
        from ..api.session import Session

        daemon = self

        class DaemonSession(Session):
            """A Session whose design-point batches fan out to the pool."""

            def batch_evaluator(self, evaluator, *, workers=None,
                                cache_dir=None):
                if daemon.workers > 0:
                    return ShardedBatch(
                        evaluator, daemon.pool, daemon.store,
                        chunk=daemon.evaluate_chunk,
                        task_timeout=daemon.task_timeout)
                return super().batch_evaluator(evaluator, workers=workers,
                                               cache_dir=cache_dir)

        return DaemonSession(name=self.name, store=self.store)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "ServiceDaemon":
        if self._started:
            return self
        self._started = True
        self._listener = protocol.listen(self.endpoint)
        self.pool.start()
        self._spawn_thread(self._accept_loop, "svc-accept")
        for index in range(self.job_runners):
            self._spawn_thread(self._job_runner, f"svc-job-{index}")
        for _ in range(self.workers):
            self._spawn_worker()
        self._spawn_thread(self._monitor_loop, "svc-monitor")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        with self._state_lock:
            if self._stopping:
                return
            self._stopping = True
        if self._listener is not None:
            with contextlib.suppress(OSError):
                self._listener.close()
        # Let job runners finish the jobs they already claimed (queued
        # jobs stay journaled for the next daemon), then drop the pool.
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            if thread.name.startswith("svc-job"):
                thread.join(max(0.0, deadline - time.monotonic()))
        self.pool.stop()
        for proc in self._procs.values():
            with contextlib.suppress(OSError):
                proc.terminate()
        for proc in self._procs.values():
            try:
                proc.wait(timeout=5.0)
            except Exception:  # noqa: BLE001 - escalate to SIGKILL
                with contextlib.suppress(OSError):
                    proc.kill()
        self._procs.clear()
        for conn in list(self._client_conns):
            with contextlib.suppress(OSError):
                conn.close()
        parsed = protocol.parse_endpoint(self.endpoint)
        if parsed[0] == "unix" and os.path.exists(parsed[1]):
            with contextlib.suppress(OSError):
                os.unlink(parsed[1])

    def __enter__(self) -> "ServiceDaemon":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _spawn_thread(self, target, name: str) -> None:
        thread = threading.Thread(target=target, daemon=True, name=name)
        thread.start()
        self._threads.append(thread)

    # ------------------------------------------------------------------
    # Workers.
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> str:
        worker_id = f"w{next(self._worker_seq)}"
        if self.worker_mode == "thread":
            from .worker import worker_loop

            thread = threading.Thread(
                target=worker_loop,
                args=(self.endpoint, self.store_dir, worker_id),
                kwargs={"heartbeat_s": min(2.0, self.heartbeat_timeout / 4)},
                daemon=True, name=f"svc-worker-{worker_id}")
            thread.start()
            return worker_id
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env.update(self.worker_env)
        # Workers follow the daemon's observability mode unless the
        # operator pinned one explicitly (env or worker_env).
        env.setdefault("REPRO_OBS", obs_mode())
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker",
             "--endpoint", self.endpoint, "--store", self.store_dir,
             "--id", worker_id,
             "--heartbeat", str(min(2.0, self.heartbeat_timeout / 4))],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        with self._state_lock:
            self._procs[worker_id] = proc
        return worker_id

    def _worker_lost(self, worker_id: str) -> None:
        """Pool callback: clean up the dead worker, spawn a replacement."""
        with self._state_lock:
            if self._stopping:
                return
            proc = self._procs.pop(worker_id, None)
        if proc is not None:
            with contextlib.suppress(OSError):
                proc.terminate()
        self._spawn_worker()

    def _monitor_loop(self) -> None:
        while not self._stopping:
            time.sleep(0.5)
            if self._stopping:
                return
            self.pool.reap_stale(self.heartbeat_timeout)
            # A spawned process that died before ever connecting leaves
            # no link for the pool to notice; replace it here.
            live = set(self.pool.live_ids())
            with self._state_lock:
                dead = [wid for wid, proc in self._procs.items()
                        if proc.poll() is not None and wid not in live]
                for wid in dead:
                    self._procs.pop(wid, None)
            for _wid in dead:
                if not self._stopping:
                    self._spawn_worker()

    # ------------------------------------------------------------------
    # Connections.
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            threading.Thread(target=self._serve_connection, args=(conn,),
                             daemon=True, name="svc-conn").start()

    def _serve_connection(self, conn) -> None:
        try:
            first = protocol.recv_frame(conn)
        except (OSError, protocol.ProtocolError):
            with contextlib.suppress(OSError):
                conn.close()
            return
        if first is None:
            with contextlib.suppress(OSError):
                conn.close()
            return
        if first.get("op") == "hello" and first.get("role") == "worker":
            self.pool.attach(conn, first)
            return
        self._client_conns.append(conn)
        try:
            message = first
            while message is not None:
                if message.get("op") == "hello":
                    reply = {"ok": True, "role": "client",
                             "daemon": self.name}
                else:
                    reply = self._client_op(message)
                try:
                    protocol.send_frame(conn, reply)
                except OSError:
                    break
                if message.get("op") == "shutdown":
                    break
                try:
                    message = protocol.recv_frame(conn)
                except (OSError, protocol.ProtocolError):
                    break
        finally:
            with contextlib.suppress(OSError):
                conn.close()
            if conn in self._client_conns:
                self._client_conns.remove(conn)

    # ------------------------------------------------------------------
    # Client operations.
    # ------------------------------------------------------------------
    def _client_op(self, message: Dict[str, object]) -> Dict[str, object]:
        op = message.get("op")
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "describe":
                return {"ok": True, "daemon": self.name,
                        "endpoint": self.endpoint,
                        "store_dir": self.store_dir,
                        "workers": self.workers,
                        "worker_mode": self.worker_mode,
                        "live_workers": self.pool.live_ids()}
            if op == "submit":
                return self._op_submit(message)
            if op == "status":
                record = self.queue.get(str(message.get("id")))
                return {"ok": True, "job": record.to_dict()}
            if op == "result":
                return self._op_result(message)
            if op == "cancel":
                cancelled = self.queue.cancel(str(message.get("id")))
                record = self.queue.get(str(message.get("id")))
                return {"ok": True, "cancelled": cancelled,
                        "job": record.to_dict()}
            if op == "jobs":
                states = message.get("states")
                records = self.queue.list(states)
                return {"ok": True, "jobs": [r.to_dict() for r in records]}
            if op == "stats":
                return {"ok": True,
                        "queue": self.queue.snapshot(),
                        "store": {**self.store.describe(),
                                  "stages": self.store.stats_dict()},
                        "workers": dict(self.pool.worker_stats),
                        "recovered": list(self.queue.recovered),
                        "metrics": self.metrics()}
            if op == "obs.spans":
                return self._op_obs_spans(message)
            if op == "trace":
                return self._op_trace(message)
            if op == "shutdown":
                threading.Thread(target=self.stop, daemon=True,
                                 name="svc-shutdown").start()
                return {"ok": True, "stopping": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except QueueError as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - client ops never kill conn
            return {"ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}

    def _op_submit(self, message: Dict[str, object]) -> Dict[str, object]:
        from ..api.requests import request_from_dict

        request = message.get("request")
        if not isinstance(request, dict):
            return {"ok": False, "error": "submit needs a request dict"}
        request_from_dict(request)  # validate kind + schema before queueing
        trace = message.get("trace")
        record = self.queue.submit(
            request, priority=int(message.get("priority", 0)),
            max_attempts=int(message.get("max_attempts", 3)),
            trace=trace if isinstance(trace, dict) else None)
        return {"ok": True, "job": record.to_dict()}

    def _op_obs_spans(self, message: Dict[str, object]) -> Dict[str, object]:
        """Stitch late client-side spans into the daemon's trace buffer."""
        spans = message.get("spans")
        if not isinstance(spans, list):
            return {"ok": False, "error": "obs.spans needs a spans list"}
        ingested = global_tracer().ingest(spans)
        by_trace: Dict[str, List[Dict[str, object]]] = {}
        for span in spans:
            if isinstance(span, dict) and span.get("trace_id"):
                by_trace.setdefault(str(span["trace_id"]), []).append(span)
        for trace_id, trace_spans in by_trace.items():
            with contextlib.suppress(OSError):
                self.journal.spans(trace_id, trace_spans,
                                   source=str(message.get("source",
                                                          "client")))
        return {"ok": True, "ingested": ingested}

    def _op_trace(self, message: Dict[str, object]) -> Dict[str, object]:
        """Everything the daemon knows about one trace id."""
        trace_id = str(message.get("id", ""))
        if not trace_id:
            return {"ok": False, "error": "trace needs an id"}
        events = read_journal(self.journal.path, trace_id)
        return {"ok": True, "trace_id": trace_id,
                "spans": global_tracer().spans_for(trace_id),
                "events": events}

    def metrics(self) -> Dict[str, object]:
        """The daemon's registry snapshot merged with worker snapshots."""
        if metrics_enabled():
            self.registry.gauge(
                "queue_depth",
                help="jobs currently queued").set(
                float(self.queue.snapshot().get("queued", 0)))
            for worker_id, lag in self.pool.heartbeat_lags().items():
                self.registry.gauge(
                    "worker_heartbeat_lag_seconds", {"worker": worker_id},
                    help="seconds since the worker's last frame").set(lag)
        snapshot = self.registry.snapshot()
        others = [m for m in self.pool.worker_metrics.values()
                  if isinstance(m, dict)]
        return merge_snapshot(snapshot, *others) if others else snapshot

    def _op_result(self, message: Dict[str, object]) -> Dict[str, object]:
        record = self.queue.get(str(message.get("id")))
        reply: Dict[str, object] = {"ok": True, "job": record.to_dict(),
                                    "state": record.state}
        if record.state == "done":
            reply["response"] = self.queue.result(record.id)
        return reply

    # ------------------------------------------------------------------
    # Job execution.
    # ------------------------------------------------------------------
    def _job_runner(self) -> None:
        while not self._stopping:
            record = self.queue.claim(timeout=0.25, worker=self.name)
            if record is None:
                continue
            self._count_claim(record)
            tracer = global_tracer()
            trace = record.trace or {}
            started = time.perf_counter()
            try:
                # Graft the job span under the client's submit context
                # (when the client was tracing) so one trace_id covers
                # client → daemon → worker → stage.
                with tracer.adopt(str(trace.get("trace_id", "")),
                                  str(trace.get("span_id", ""))):
                    with tracer.span("daemon.job", job=record.id,
                                     kind=record.kind) as span:
                        response = self._run_job(record.request)
                        trace_id = span.trace_id
            except Exception as exc:  # noqa: BLE001 - job fails, runner lives
                self._count_done(record, "failed",
                                 time.perf_counter() - started)
                with contextlib.suppress(QueueError):
                    self.queue.fail(record.id,
                                    f"{type(exc).__name__}: {exc}")
                continue
            self._count_done(record, "done", time.perf_counter() - started)
            if trace_id:
                provenance = response.get("provenance")
                if isinstance(provenance, dict):
                    provenance.setdefault("trace_id", "")
                    if not provenance["trace_id"]:
                        provenance["trace_id"] = trace_id
                self._journal_job(record, response, trace_id)
            with contextlib.suppress(QueueError):
                self.queue.finish(record.id, response)

    def _count_claim(self, record) -> None:
        if not metrics_enabled():
            return
        wait = max(0.0, (record.started_at or 0.0) - record.submitted_at)
        self.registry.histogram(
            "queue_wait_seconds",
            help="submit-to-claim latency of daemon jobs").observe(wait)
        self.registry.counter(
            "jobs_claimed", {"kind": record.kind},
            help="jobs claimed by the daemon's runners").inc()

    def _count_done(self, record, state: str, seconds: float) -> None:
        if not metrics_enabled():
            return
        self.registry.counter(
            "jobs_finished", {"kind": record.kind, "state": state},
            help="jobs finished by terminal state").inc()
        self.registry.histogram(
            "job_seconds", {"kind": record.kind},
            help="claim-to-finish job execution time").observe(seconds)

    def _journal_job(self, record, response: Dict[str, object],
                     trace_id: str) -> None:
        try:
            self.journal.manifest(
                kind=record.kind, trace_id=trace_id,
                source=f"daemon:{self.name}",
                request=record.request,
                provenance=response.get("provenance")
                if isinstance(response.get("provenance"), dict) else None,
                spans=global_tracer().spans_for(trace_id),
                metrics=self.metrics(),
                extra={"job": record.id})
        except OSError:  # pragma: no cover - journaling is best effort
            pass

    def _pool_provenance(self, engine: str, fidelity: str,
                         started: float) -> Dict[str, object]:
        from ..api.requests import Provenance

        return Provenance(
            session=self.name, engine=engine, fidelity=fidelity,
            elapsed_s=round(time.perf_counter() - started, 6),
            cache={"store": self.store.stats_dict(),
                   "workers": dict(self.pool.worker_stats)},
            worker="+".join(sorted(self.pool.worker_stats)) or "pool",
        ).to_dict()

    def _run_job(self, request: Dict[str, object]) -> Dict[str, object]:
        from ..api.requests import (
            ExploreRequest, MatrixRequest, PopulationRequest,
            request_from_dict,
        )

        kind = request.get("kind")
        if self.workers <= 0:
            response = self.session.execute(request_from_dict(request))
            if response.provenance is not None:
                response.provenance.worker = self.name
            return response.to_dict()
        if kind == MatrixRequest.kind:
            return self._run_matrix_job(request)
        if kind == PopulationRequest.kind:
            return self._run_population_job(request)
        if kind == ExploreRequest.kind:
            # Sequential search loop in the daemon; the point
            # evaluations fan out through ShardedBatch (DaemonSession).
            response = self.session.execute(request_from_dict(request))
            if response.provenance is not None:
                response.provenance.worker = (
                    "+".join(sorted(self.pool.worker_stats)) or self.name)
            return response.to_dict()
        result = self.pool.run_task({"task": "request", "request": request},
                                    timeout=self.task_timeout)
        return result["response"]

    def _run_matrix_job(self, request: Dict[str, object]
                        ) -> Dict[str, object]:
        from ..api.requests import SCHEMA_VERSION, MatrixResponse

        started = time.perf_counter()
        shards = shard_matrix(request)
        results = self.pool.run_many(shards, timeout=self.task_timeout)
        merged = merge_matrix(request, results)
        response = {"kind": MatrixResponse.kind,
                    "schema_version": SCHEMA_VERSION}
        response.update(merged)
        response["provenance"] = self._pool_provenance(
            merged["engine"], merged["fidelity"], started)
        return response

    def _run_population_job(self, request: Dict[str, object]
                            ) -> Dict[str, object]:
        validate = bool(request.get("validate_population", True))
        report_request = dict(request)
        report_request["validate_population"] = False
        tasks: List[Dict[str, object]] = []
        if validate:
            tasks.extend(shard_population(request, self.workers))
        tasks.append({"task": "request", "request": report_request})
        results = self.pool.run_many(tasks, timeout=self.task_timeout)
        response = merge_population(results[-1]["response"], results[:-1],
                                    validate)
        return response
