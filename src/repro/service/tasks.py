"""Sharding and merging of fan-out requests across the worker pool.

The daemon never executes a fan-out request as one lump: it turns the
request into *tasks* (small framed-JSON dicts a single worker can serve)
and merges the task results back into the exact response a single
in-process :meth:`repro.api.Session.execute` would have produced — the
bit-identity contract of the whole service layer.

* :class:`~repro.api.requests.MatrixRequest` shards **by machine**: the
  N×M matrix iterates machines outer / sorted kernels inner, so one
  task per machine, merged in request order, reproduces the row order
  exactly.  Workers additionally memoize each (machine, kernel) cell in
  the shared store under the :data:`CELL_STAGE` stage, so a repeated
  matrix — the "8 concurrent clients, one warm daemon" load shape —
  costs one store lookup per cell.
* :class:`~repro.api.requests.ExploreRequest` is not sharded here at
  all: the daemon runs the explorer's search loop itself and fans the
  *design-point evaluations* out through
  :class:`~repro.service.daemon.ShardedBatch` (an ``evaluate`` task per
  point chunk), because search strategies are sequential but their
  inner loop is embarrassingly parallel.
* :class:`~repro.api.requests.PopulationRequest` shards its validation
  pass round-robin over the (deterministically regenerated) population
  — ``population_validate`` tasks — while the report phase runs as one
  ``request`` task.

Everything here is pure data-plumbing (no sockets, no threads), which
is what makes the shard/merge contract unit-testable without a daemon.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Mapping, Optional, Sequence

#: shared-store stage under which workers memoize matrix cells.
CELL_STAGE = "cell"

#: bump when the cell recipe or payload layout changes incompatibly.
CELL_SCHEMA = 1


def canonical_machine(machine: object) -> str:
    """Stable string form of a request machine reference."""
    if isinstance(machine, Mapping):
        return json.dumps(dict(machine), sort_keys=True)
    return str(machine)


def cell_key(machine: object, kernel: str, size: Optional[int],
             seed: int, opt_level: int, engine: str, fidelity: str) -> str:
    """Content key of one fully resolved (machine, kernel) matrix cell."""
    recipe = (CELL_SCHEMA, canonical_machine(machine), kernel, size, seed,
              opt_level, engine, fidelity)
    return hashlib.sha256(repr(recipe).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Matrix.
# ----------------------------------------------------------------------

def shard_matrix(request: Mapping[str, object]) -> List[Dict[str, object]]:
    """One ``matrix`` task per machine, preserving every other field."""
    tasks = []
    for machine in request["machines"]:
        shard = dict(request)
        shard["machines"] = [machine]
        tasks.append({"task": "matrix", "request": shard})
    return tasks


def merge_matrix(request: Mapping[str, object],
                 shards: Sequence[Mapping[str, object]]) -> Dict[str, object]:
    """Merge per-machine shard results into MatrixResponse fields.

    Each shard result carries ``machines`` (one resolved name),
    ``kernels`` (sorted, identical across shards), ``engine``,
    ``fidelity``, ``rows``, ``failures`` and ``correct`` (count).  Rows
    concatenate in request-machine order, which is exactly the cell
    order of a single-process ``run_matrix`` call.
    """
    machines: List[str] = []
    rows: List[Dict[str, object]] = []
    failures: List[Dict[str, object]] = []
    correct = 0
    for shard in shards:
        machines.extend(shard["machines"])
        rows.extend(shard["rows"])
        failures.extend(shard["failures"])
        correct += int(shard["correct"])
    kernels = list(shards[0]["kernels"]) if shards else []
    cells = len(rows)
    return {
        "machines": machines,
        "kernels": kernels,
        "engine": shards[0]["engine"] if shards else "",
        "fidelity": shards[0]["fidelity"] if shards else "cycle",
        "pass_rate": (correct / cells) if cells else 0.0,
        "all_correct": bool(cells) and correct == cells,
        "rows": rows,
        "failures": failures,
    }


# ----------------------------------------------------------------------
# Population.
# ----------------------------------------------------------------------

def shard_population(request: Mapping[str, object],
                     shards: int) -> List[Dict[str, object]]:
    """``population_validate`` tasks, round-robin over the population.

    Generation is deterministic in (count, seed, families), so each
    worker regenerates the same population locally and validates only
    its ``index``-th slice — no kernel bytes cross the wire.
    """
    shards = max(1, shards)
    return [
        {"task": "population_validate", "request": dict(request),
         "index": index, "shards": shards}
        for index in range(shards)
    ]


def merge_population(report_response: Mapping[str, object],
                     validations: Sequence[Mapping[str, object]],
                     validate_requested: bool) -> Dict[str, object]:
    """Fold sharded validation counts into the report task's response."""
    response = dict(report_response)
    if validate_requested:
        response["valid"] = sum(int(v["valid"]) for v in validations)
    return response
