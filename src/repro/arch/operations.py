"""Machine operation classes and the mapping from IR opcodes onto them.

The *operation class* is the unit of the machine description tables: every
functional unit declares which classes it can execute, and every class has
a default latency that a machine description may override.  This is the
"table" in the paper's "table-driven architectural descriptions".
"""

from __future__ import annotations

import enum
from typing import Dict

from ..ir import Opcode


class OperationClass(enum.Enum):
    """Broad classes of machine operations (one functional-unit family each)."""

    IALU = "ialu"        # integer add/sub/logic/shift/compare/select/move
    IMUL = "imul"        # integer multiply
    IDIV = "idiv"        # integer divide / remainder
    FPU = "fpu"          # floating point add/sub/mul
    FDIV = "fdiv"        # floating point divide
    MEM = "mem"          # loads and stores
    BRANCH = "branch"    # control transfer
    CUSTOM = "custom"    # application-specific fused operations
    NOP = "nop"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: IR opcode -> operation class.
OPCODE_CLASS: Dict[Opcode, OperationClass] = {
    Opcode.ADD: OperationClass.IALU,
    Opcode.SUB: OperationClass.IALU,
    Opcode.AND: OperationClass.IALU,
    Opcode.OR: OperationClass.IALU,
    Opcode.XOR: OperationClass.IALU,
    Opcode.SHL: OperationClass.IALU,
    Opcode.SHR: OperationClass.IALU,
    Opcode.SAR: OperationClass.IALU,
    Opcode.MIN: OperationClass.IALU,
    Opcode.MAX: OperationClass.IALU,
    Opcode.ABS: OperationClass.IALU,
    Opcode.NEG: OperationClass.IALU,
    Opcode.NOT: OperationClass.IALU,
    Opcode.CMPEQ: OperationClass.IALU,
    Opcode.CMPNE: OperationClass.IALU,
    Opcode.CMPLT: OperationClass.IALU,
    Opcode.CMPLE: OperationClass.IALU,
    Opcode.CMPGT: OperationClass.IALU,
    Opcode.CMPGE: OperationClass.IALU,
    Opcode.SELECT: OperationClass.IALU,
    Opcode.MOV: OperationClass.IALU,
    Opcode.SEXT: OperationClass.IALU,
    Opcode.ZEXT: OperationClass.IALU,
    Opcode.TRUNC: OperationClass.IALU,
    Opcode.MUL: OperationClass.IMUL,
    Opcode.DIV: OperationClass.IDIV,
    Opcode.REM: OperationClass.IDIV,
    Opcode.FADD: OperationClass.FPU,
    Opcode.FSUB: OperationClass.FPU,
    Opcode.FMUL: OperationClass.FPU,
    Opcode.FNEG: OperationClass.FPU,
    Opcode.FDIV: OperationClass.FDIV,
    Opcode.FCMPEQ: OperationClass.FPU,
    Opcode.FCMPLT: OperationClass.FPU,
    Opcode.FCMPLE: OperationClass.FPU,
    Opcode.ITOF: OperationClass.FPU,
    Opcode.FTOI: OperationClass.FPU,
    Opcode.LOAD: OperationClass.MEM,
    Opcode.STORE: OperationClass.MEM,
    Opcode.ALLOCA: OperationClass.IALU,
    Opcode.JUMP: OperationClass.BRANCH,
    Opcode.BRANCH: OperationClass.BRANCH,
    Opcode.RETURN: OperationClass.BRANCH,
    Opcode.CALL: OperationClass.BRANCH,
    Opcode.CUSTOM: OperationClass.CUSTOM,
}

#: Default operation latencies in cycles (result available N cycles after
#: issue).  These mirror a late-1990s embedded core: single-cycle ALU,
#: pipelined 2-cycle multiply, long non-pipelined divide, 2-cycle loads.
DEFAULT_LATENCY: Dict[OperationClass, int] = {
    OperationClass.IALU: 1,
    OperationClass.IMUL: 2,
    OperationClass.IDIV: 12,
    OperationClass.FPU: 3,
    OperationClass.FDIV: 16,
    OperationClass.MEM: 2,
    OperationClass.BRANCH: 1,
    OperationClass.CUSTOM: 1,
    OperationClass.NOP: 1,
}

#: Default per-operation dynamic energy in picojoules, used by the energy
#: model.  Values are first-order estimates for a ~0.25 micron embedded
#: process; only relative magnitudes matter for the experiments.
DEFAULT_ENERGY_PJ: Dict[OperationClass, float] = {
    OperationClass.IALU: 4.0,
    OperationClass.IMUL: 18.0,
    OperationClass.IDIV: 60.0,
    OperationClass.FPU: 25.0,
    OperationClass.FDIV: 90.0,
    OperationClass.MEM: 22.0,
    OperationClass.BRANCH: 6.0,
    OperationClass.CUSTOM: 10.0,
    OperationClass.NOP: 0.5,
}


def classify(opcode: Opcode) -> OperationClass:
    """Return the operation class for an IR opcode."""
    try:
        return OPCODE_CLASS[opcode]
    except KeyError:
        raise ValueError(f"no operation class defined for opcode {opcode}") from None
