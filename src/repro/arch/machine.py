"""Table-driven machine descriptions for the customizable VLIW family.

A :class:`MachineDescription` is the single "table" the whole toolchain is
driven from (paper §3.1): the compiler back end reads it to schedule and
allocate, the simulators read it to time execution, the area/power models
read it to cost the design, and the customizer writes extended copies of it
when it adds application-specific operations.

Every field corresponds to one of the "visible changes" §1.2 enumerates:
multiple visible ALUs (``functional_units`` / ``issue_width``), number of
registers (``registers_per_cluster``), register clusters (``num_clusters``),
specialized ALUs (unit ``classes`` and ``has_*`` switches), changed
latencies (``latency_overrides``), visible instruction compression
(``compressed_encoding``), and custom operations (``custom_ops``).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .operations import DEFAULT_LATENCY, OperationClass


class MachineConfigError(Exception):
    """Raised when a machine description is internally inconsistent."""


@dataclass
class FunctionalUnit:
    """One issue slot resource: a unit able to execute a set of op classes."""

    name: str
    classes: frozenset
    count: int = 1

    def __post_init__(self) -> None:
        self.classes = frozenset(
            OperationClass(c) if not isinstance(c, OperationClass) else c
            for c in self.classes
        )
        if self.count < 1:
            raise MachineConfigError(f"functional unit {self.name} needs count >= 1")

    def can_execute(self, op_class: OperationClass) -> bool:
        return op_class in self.classes


@dataclass
class CustomOperation:
    """An application-specific operation added to the ISA.

    The semantics of the operation are carried by the
    :class:`repro.core.patterns.Pattern` registered under the same name in
    the module's :class:`repro.core.library.ExtensionLibrary`; the machine
    description only records its pipeline/cost characteristics.
    """

    name: str
    num_inputs: int
    num_outputs: int
    latency: int
    area_kgates: float
    #: number of primitive IR operations the custom op replaces (bookkeeping
    #: for reports; the true semantics live in the pattern).
    fused_ops: int = 0

    def __post_init__(self) -> None:
        if self.num_inputs < 0 or self.num_outputs < 1:
            raise MachineConfigError(f"custom op {self.name}: bad arity")
        if self.latency < 1:
            raise MachineConfigError(f"custom op {self.name}: latency must be >= 1")


@dataclass
class CacheConfig:
    """A simple direct-mapped / set-associative cache description."""

    size_bytes: int = 8192
    line_bytes: int = 32
    associativity: int = 1
    hit_latency: int = 0      # extra cycles on a hit (0 = pipelined)
    miss_penalty: int = 20    # cycles to main memory

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise MachineConfigError("cache size must be a multiple of line*assoc")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass
class MachineDescription:
    """The complete architecturally-visible description of a family member."""

    name: str = "machine"
    #: operations issued per cycle (the VLIW word width).
    issue_width: int = 1
    #: number of register clusters; registers and FUs are split evenly.
    num_clusters: int = 1
    #: general-purpose registers in each cluster's register file.
    registers_per_cluster: int = 32
    #: functional units (shared across clusters; per-cluster count is
    #: ``count / num_clusters`` rounded up when clustering).
    functional_units: List[FunctionalUnit] = field(default_factory=list)
    #: per-class latency overrides (cycles).
    latency_overrides: Dict[OperationClass, int] = field(default_factory=dict)
    #: taken-branch penalty in cycles.
    branch_penalty: int = 1
    #: cycles to move a value between clusters.
    intercluster_latency: int = 1
    #: custom (application-specific) operations, keyed by name.
    custom_ops: Dict[str, CustomOperation] = field(default_factory=dict)
    #: instruction caches / data caches (None disables modelling).
    icache: Optional[CacheConfig] = None
    dcache: Optional[CacheConfig] = None
    #: bits per operation syllable in the encoding (§1.2 "visible
    #: instruction compression" shrinks this).
    syllable_bits: int = 32
    compressed_encoding: bool = False
    #: clock period in nanoseconds (used by the performance/price models).
    clock_ns: float = 5.0
    #: free-form provenance notes (which base machine, what was customized).
    notes: str = ""

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if not self.functional_units:
            self.functional_units = default_functional_units(self.issue_width)
        self.validate()

    def validate(self) -> None:
        """Check internal consistency; raise :class:`MachineConfigError`."""
        if self.issue_width < 1:
            raise MachineConfigError("issue width must be at least 1")
        if self.num_clusters < 1:
            raise MachineConfigError("need at least one cluster")
        if self.issue_width % self.num_clusters != 0:
            raise MachineConfigError(
                "issue width must be divisible by the number of clusters"
            )
        if self.registers_per_cluster < 4:
            raise MachineConfigError("need at least 4 registers per cluster")
        total_units = sum(fu.count for fu in self.functional_units)
        if total_units < 1:
            raise MachineConfigError("machine has no functional units")
        covered = set()
        for fu in self.functional_units:
            covered |= fu.classes
        for required in (OperationClass.IALU, OperationClass.MEM, OperationClass.BRANCH):
            if required not in covered:
                raise MachineConfigError(f"no functional unit can execute {required}")
        if self.custom_ops and OperationClass.CUSTOM not in covered:
            raise MachineConfigError(
                "machine defines custom ops but no unit executes the CUSTOM class"
            )

    def clone(self, new_name: Optional[str] = None) -> "MachineDescription":
        """Deep copy of this description (used when deriving family members)."""
        new = copy.deepcopy(self)
        if new_name:
            new.name = new_name
        return new

    # ------------------------------------------------------------------
    # Queries used by the back end and simulators.
    # ------------------------------------------------------------------
    def latency(self, op_class: OperationClass) -> int:
        """Latency in cycles for an operation class on this machine."""
        return self.latency_overrides.get(op_class, DEFAULT_LATENCY[op_class])

    def custom_latency(self, name: str) -> int:
        """Latency of a named custom operation."""
        return self.custom_ops[name].latency

    def units_for(self, op_class: OperationClass) -> List[FunctionalUnit]:
        """Functional units able to execute ``op_class``."""
        return [fu for fu in self.functional_units if fu.can_execute(op_class)]

    def slots_for(self, op_class: OperationClass) -> int:
        """Total number of issue slots per cycle for ``op_class``."""
        return sum(fu.count for fu in self.units_for(op_class))

    def supports(self, op_class: OperationClass) -> bool:
        return self.slots_for(op_class) > 0

    def has_custom_op(self, name: str) -> bool:
        return name in self.custom_ops

    @property
    def total_registers(self) -> int:
        return self.registers_per_cluster * self.num_clusters

    @property
    def total_functional_units(self) -> int:
        return sum(fu.count for fu in self.functional_units)

    @property
    def cluster_issue_width(self) -> int:
        return self.issue_width // self.num_clusters

    # ------------------------------------------------------------------
    # Customization (used by repro.core and repro.dse).
    # ------------------------------------------------------------------
    def add_custom_op(self, op: CustomOperation) -> None:
        """Register a custom operation; adds a CUSTOM-capable unit if needed."""
        if op.name in self.custom_ops:
            raise MachineConfigError(f"duplicate custom op {op.name}")
        self.custom_ops[op.name] = op
        if not self.supports(OperationClass.CUSTOM):
            self.functional_units.append(
                FunctionalUnit("cfu", frozenset({OperationClass.CUSTOM}), count=1)
            )

    def describe(self) -> str:
        """A short human-readable summary of the machine."""
        units = ", ".join(f"{fu.count}x{fu.name}" for fu in self.functional_units)
        custom = f", {len(self.custom_ops)} custom ops" if self.custom_ops else ""
        return (
            f"{self.name}: {self.issue_width}-issue, {self.num_clusters} cluster(s), "
            f"{self.registers_per_cluster} regs/cluster, units [{units}]{custom}"
        )

    def to_table(self) -> Dict[str, object]:
        """Serialize the architecturally-visible parameters to a flat dict.

        This is the "architecture description table" exchanged with the
        toolchain generator and stored by the design-space explorer.
        """
        return {
            "name": self.name,
            "issue_width": self.issue_width,
            "num_clusters": self.num_clusters,
            "registers_per_cluster": self.registers_per_cluster,
            "functional_units": [
                (fu.name, sorted(c.value for c in fu.classes), fu.count)
                for fu in self.functional_units
            ],
            "latency_overrides": {
                c.value: lat for c, lat in self.latency_overrides.items()
            },
            "branch_penalty": self.branch_penalty,
            "custom_ops": sorted(self.custom_ops),
            "syllable_bits": self.syllable_bits,
            "compressed_encoding": self.compressed_encoding,
            "clock_ns": self.clock_ns,
        }

    @staticmethod
    def from_table(table: Dict[str, object]) -> "MachineDescription":
        """Rebuild a description from :meth:`to_table` output (custom ops
        excluded — they are re-attached by the extension library)."""
        units = [
            FunctionalUnit(name, frozenset(OperationClass(c) for c in classes), count)
            for name, classes, count in table["functional_units"]
        ]
        overrides = {
            OperationClass(c): int(lat)
            for c, lat in dict(table.get("latency_overrides", {})).items()
        }
        return MachineDescription(
            name=str(table["name"]),
            issue_width=int(table["issue_width"]),
            num_clusters=int(table["num_clusters"]),
            registers_per_cluster=int(table["registers_per_cluster"]),
            functional_units=units,
            latency_overrides=overrides,
            branch_penalty=int(table.get("branch_penalty", 1)),
            syllable_bits=int(table.get("syllable_bits", 32)),
            compressed_encoding=bool(table.get("compressed_encoding", False)),
            clock_ns=float(table.get("clock_ns", 5.0)),
        )


def default_functional_units(issue_width: int) -> List[FunctionalUnit]:
    """A balanced functional-unit mix for a given issue width.

    Mirrors the resource mix of a generic embedded VLIW: all slots can do
    integer ALU work, roughly half can multiply, one does memory per two
    slots (minimum one), one branch unit, and a shared divider.
    """
    ialu = FunctionalUnit("ialu", frozenset({OperationClass.IALU}), count=issue_width)
    imul = FunctionalUnit(
        "imul", frozenset({OperationClass.IMUL}), count=max(1, issue_width // 2)
    )
    mem = FunctionalUnit(
        "mem", frozenset({OperationClass.MEM}), count=max(1, issue_width // 2)
    )
    branch = FunctionalUnit("branch", frozenset({OperationClass.BRANCH}), count=1)
    idiv = FunctionalUnit("idiv", frozenset({OperationClass.IDIV}), count=1)
    fpu = FunctionalUnit(
        "fpu", frozenset({OperationClass.FPU, OperationClass.FDIV}),
        count=max(1, issue_width // 4),
    )
    return [ialu, imul, mem, branch, idiv, fpu]
