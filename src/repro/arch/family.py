"""ISA families and "ISA drift" descriptors.

Paper §2 predicts that architectures will become *families* of ISAs that
are, by 1999 standards, mutually incompatible — differing in issue width,
register count, latencies and custom operations — while remaining
compatible in practice because binaries are re-targeted after distribution
(object-code translation, dynamic optimization).  This module captures the
family structure: a base member plus derived members, with a machine-level
diff (the *drift*) between any two members that the translator in
:mod:`repro.drift` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .machine import MachineDescription


@dataclass
class DriftRecord:
    """The architecturally-visible differences between two family members."""

    source: str
    target: str
    issue_width_change: int = 0
    register_change: int = 0
    cluster_change: int = 0
    latency_changes: Dict[str, int] = field(default_factory=dict)
    added_custom_ops: List[str] = field(default_factory=list)
    removed_custom_ops: List[str] = field(default_factory=list)
    encoding_changed: bool = False

    @property
    def is_binary_compatible(self) -> bool:
        """True if a binary for ``source`` runs unmodified on ``target``.

        In this model that requires: no encoding change, no removed custom
        operations, at least as many registers and at least the same issue
        width (narrowing either breaks the schedule/allocation contract).
        """
        return (
            not self.encoding_changed
            and not self.removed_custom_ops
            and self.register_change >= 0
            and self.issue_width_change >= 0
            and self.cluster_change == 0
        )

    @property
    def severity(self) -> int:
        """A rough count of visible differences (0 = identical)."""
        return (
            int(self.issue_width_change != 0)
            + int(self.register_change != 0)
            + int(self.cluster_change != 0)
            + len(self.latency_changes)
            + len(self.added_custom_ops)
            + len(self.removed_custom_ops)
            + int(self.encoding_changed)
        )


def compute_drift(source: MachineDescription,
                  target: MachineDescription) -> DriftRecord:
    """Diff two machine descriptions into a :class:`DriftRecord`."""
    latency_changes: Dict[str, int] = {}
    classes = set(source.latency_overrides) | set(target.latency_overrides)
    for op_class in classes:
        before = source.latency(op_class)
        after = target.latency(op_class)
        if before != after:
            latency_changes[op_class.value] = after - before

    return DriftRecord(
        source=source.name,
        target=target.name,
        issue_width_change=target.issue_width - source.issue_width,
        register_change=target.total_registers - source.total_registers,
        cluster_change=target.num_clusters - source.num_clusters,
        latency_changes=latency_changes,
        added_custom_ops=sorted(set(target.custom_ops) - set(source.custom_ops)),
        removed_custom_ops=sorted(set(source.custom_ops) - set(target.custom_ops)),
        encoding_changed=(
            source.syllable_bits != target.syllable_bits
            or source.compressed_encoding != target.compressed_encoding
        ),
    )


class IsaFamily:
    """A named family of machine descriptions sharing a base member.

    The family presents "a single family view to programmers" (§3.1): the
    toolchain compiles against whichever member is selected, and the drift
    machinery moves already-built binaries between members.
    """

    def __init__(self, name: str, base: MachineDescription) -> None:
        self.name = name
        self.base = base
        self.members: Dict[str, MachineDescription] = {base.name: base}
        self.generations: List[str] = [base.name]

    def add_member(self, machine: MachineDescription) -> DriftRecord:
        """Register a new family member; returns its drift from the base."""
        if machine.name in self.members:
            raise ValueError(f"family {self.name} already has member {machine.name}")
        self.members[machine.name] = machine
        self.generations.append(machine.name)
        return compute_drift(self.base, machine)

    def derive(self, new_name: str, **changes) -> MachineDescription:
        """Derive a new member from the base by keyword overrides.

        Supported keys mirror :class:`MachineDescription` fields
        (``issue_width``, ``registers_per_cluster``, ``num_clusters``,
        ``latency_overrides``, ``compressed_encoding``, ``clock_ns``).
        """
        machine = self.base.clone(new_name)
        for key, value in changes.items():
            if not hasattr(machine, key):
                raise AttributeError(f"machine description has no field {key}")
            setattr(machine, key, value)
        machine.validate()
        self.add_member(machine)
        return machine

    def get(self, name: str) -> MachineDescription:
        try:
            return self.members[name]
        except KeyError:
            raise KeyError(f"no member {name} in family {self.name}") from None

    def drift(self, source: str, target: str) -> DriftRecord:
        """Drift record between two named members."""
        return compute_drift(self.get(source), self.get(target))

    def compatibility_matrix(self) -> Dict[str, Dict[str, bool]]:
        """For every ordered member pair, is the binary compatible as-is?

        This is the matrix that motivates §2.2: most cells are ``False`` by
        1999 standards, and the drift machinery is what makes them usable
        anyway.
        """
        names = list(self.members)
        return {
            src: {dst: self.drift(src, dst).is_binary_compatible for dst in names}
            for src in names
        }

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self):
        return iter(self.members.values())

    def __contains__(self, name: str) -> bool:
        return name in self.members
