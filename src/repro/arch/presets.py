"""Preset machine descriptions used throughout the examples and experiments.

These are the named points in the design space that the paper's argument
keeps returning to: a generic scalar embedded RISC (the thing you buy off
the shelf), mass-market superscalar-style parts (what you pay the Table-1
premium for), and customized VLIW family members of several widths (what
the mass-customized toolchain lets you build instead).
"""

from __future__ import annotations

from .machine import (
    CacheConfig, FunctionalUnit, MachineDescription,
)
from .operations import OperationClass


def _cache_small() -> CacheConfig:
    return CacheConfig(size_bytes=8192, line_bytes=32, associativity=1, miss_penalty=20)


def _cache_large() -> CacheConfig:
    return CacheConfig(size_bytes=16384, line_bytes=32, associativity=2, miss_penalty=20)


def risc_baseline(name: str = "risc32") -> MachineDescription:
    """A generic single-issue 32-bit embedded RISC (the off-the-shelf part)."""
    units = [
        FunctionalUnit("alu", frozenset({OperationClass.IALU}), count=1),
        FunctionalUnit("mul", frozenset({OperationClass.IMUL}), count=1),
        FunctionalUnit("div", frozenset({OperationClass.IDIV}), count=1),
        FunctionalUnit("mem", frozenset({OperationClass.MEM}), count=1),
        FunctionalUnit("br", frozenset({OperationClass.BRANCH}), count=1),
        FunctionalUnit(
            "fpu", frozenset({OperationClass.FPU, OperationClass.FDIV}), count=1
        ),
    ]
    return MachineDescription(
        name=name,
        issue_width=1,
        num_clusters=1,
        registers_per_cluster=32,
        functional_units=units,
        branch_penalty=2,
        icache=_cache_small(),
        dcache=_cache_small(),
        clock_ns=5.0,
        notes="generic scalar embedded RISC baseline",
    )


def vliw(issue_width: int = 4, *, name: str | None = None,
         registers: int = 64, clusters: int = 1,
         compressed: bool = True) -> MachineDescription:
    """A customizable exposed-pipeline VLIW of the given width."""
    name = name or f"vliw{issue_width}"
    return MachineDescription(
        name=name,
        issue_width=issue_width,
        num_clusters=clusters,
        registers_per_cluster=max(8, registers // clusters),
        branch_penalty=1,
        icache=_cache_large(),
        dcache=_cache_large(),
        compressed_encoding=compressed,
        clock_ns=4.0,
        notes=f"{issue_width}-issue customizable VLIW family member",
    )


def vliw4(name: str = "vliw4") -> MachineDescription:
    """The §2.2 machine: a 4-issue customized VLIW."""
    return vliw(4, name=name)


def vliw8(name: str = "vliw8") -> MachineDescription:
    """A wide 8-issue VLIW (embedded-supercomputing point of §1.3)."""
    return vliw(8, name=name, registers=128)

def vliw2(name: str = "vliw2") -> MachineDescription:
    """A narrow 2-issue VLIW (low-area/low-power point)."""
    return vliw(2, name=name, registers=32)


def clustered_vliw4(name: str = "vliw4c2") -> MachineDescription:
    """A 4-issue VLIW split into two register clusters (§1.2 'register clusters')."""
    return vliw(4, name=name, registers=64, clusters=2)


def dsp_core(name: str = "dsp16") -> MachineDescription:
    """A multiply-rich, integer-only core typical of baseband/audio DSP work."""
    units = [
        FunctionalUnit("alu", frozenset({OperationClass.IALU}), count=2),
        FunctionalUnit("mac", frozenset({OperationClass.IMUL}), count=2),
        FunctionalUnit("mem", frozenset({OperationClass.MEM}), count=2),
        FunctionalUnit("br", frozenset({OperationClass.BRANCH}), count=1),
        FunctionalUnit("div", frozenset({OperationClass.IDIV}), count=1),
    ]
    return MachineDescription(
        name=name,
        issue_width=4,
        num_clusters=1,
        registers_per_cluster=48,
        functional_units=units,
        branch_penalty=1,
        icache=_cache_small(),
        dcache=_cache_small(),
        compressed_encoding=True,
        clock_ns=5.0,
        notes="multiply-rich integer DSP-style core (no FPU)",
    )


def mass_market_superscalar(name: str = "massmkt") -> MachineDescription:
    """A mass-market, binary-compatible high-end embedded processor.

    Used as the *more complex, much larger* comparison part of Barrier 3
    (§4): same nominal issue width as the custom VLIW, but its area is
    costed with dynamically-scheduled control (see
    :func:`repro.arch.area.estimate_area`) and it runs the fixed base ISA
    with no custom operations.
    """
    return MachineDescription(
        name=name,
        issue_width=4,
        num_clusters=1,
        registers_per_cluster=32,
        branch_penalty=3,
        icache=_cache_large(),
        dcache=_cache_large(),
        compressed_encoding=False,
        clock_ns=3.0,
        notes="mass-market binary-compatible superscalar comparison point",
    )


#: Registry of all presets by name (used by the N×M matrix and the CLI-ish
#: example scripts).
PRESETS = {
    "risc32": risc_baseline,
    "vliw2": vliw2,
    "vliw4": vliw4,
    "vliw8": vliw8,
    "vliw4c2": clustered_vliw4,
    "dsp16": dsp_core,
    "massmkt": mass_market_superscalar,
}


def get_preset(name: str) -> MachineDescription:
    """Instantiate a preset machine description by name."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown preset '{name}'; available: {', '.join(sorted(PRESETS))}"
        ) from None
