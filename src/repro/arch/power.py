"""First-order energy/power model.

Dynamic energy is accumulated per executed operation by the cycle
simulator (:mod:`repro.sim.cycle`); static (leakage + clock-tree) power is
charged per cycle in proportion to core area.  As with the area model, the
constants are indicative of a late-1990s embedded process and only the
*relative* ordering between candidate machines is meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .area import estimate_area
from .machine import MachineDescription
from .operations import DEFAULT_ENERGY_PJ, OperationClass

#: static power per kgate, in milliwatts (leakage + idle clocking).
STATIC_MW_PER_KGATE = 0.002

#: energy per custom-op input operand beyond two (extra register ports).
CUSTOM_INPUT_PJ = 1.5

#: energy per cache access / miss.
CACHE_HIT_PJ = 15.0
CACHE_MISS_PJ = 180.0


@dataclass
class EnergyReport:
    """Per-run energy accounting produced by the cycle simulator."""

    dynamic_pj: float = 0.0
    static_pj: float = 0.0
    cache_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return self.dynamic_pj + self.static_pj + self.cache_pj

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    def as_dict(self) -> Dict[str, float]:
        return {
            "dynamic_pj": self.dynamic_pj,
            "static_pj": self.static_pj,
            "cache_pj": self.cache_pj,
            "total_pj": self.total_pj,
        }


def operation_pj(op_class: OperationClass, custom_inputs: int = 0) -> float:
    """Dynamic energy of one executed operation, in pJ."""
    energy = DEFAULT_ENERGY_PJ[op_class]
    if op_class is OperationClass.CUSTOM and custom_inputs > 2:
        energy += CUSTOM_INPUT_PJ * (custom_inputs - 2)
    return energy


def custom_pj(fused_ops: int, inputs: int) -> float:
    """Dynamic energy of one custom op replacing ``fused_ops`` primitives.

    A fused datapath avoids intermediate register-file writebacks, so its
    energy is less than the sum of the primitives it replaces; we model a
    40% saving on the fused portion.
    """
    base = DEFAULT_ENERGY_PJ[OperationClass.IALU] * max(1, fused_ops) * 0.6
    if inputs > 2:
        base += CUSTOM_INPUT_PJ * (inputs - 2)
    return base


class EnergyModel:
    """Accumulates energy for a run on a specific machine."""

    def __init__(self, machine: MachineDescription) -> None:
        self.machine = machine
        area = estimate_area(machine)
        #: static energy charged per cycle = P_static * clock period.
        self.static_pj_per_cycle = (
            STATIC_MW_PER_KGATE * area.total * machine.clock_ns
        )
        self.report = EnergyReport()

    def charge_operation(self, op_class: OperationClass,
                         custom_inputs: int = 0) -> None:
        """Charge the dynamic energy of one executed operation."""
        self.report.dynamic_pj += operation_pj(op_class, custom_inputs)

    def charge_custom(self, fused_ops: int, inputs: int) -> None:
        """Charge a custom operation that replaces ``fused_ops`` primitives."""
        self.report.dynamic_pj += custom_pj(fused_ops, inputs)

    def charge_cycles(self, cycles: int) -> None:
        """Charge static energy for ``cycles`` elapsed cycles."""
        self.report.static_pj += self.static_pj_per_cycle * cycles

    def charge_cache(self, hits: int, misses: int) -> None:
        """Charge cache access energy."""
        self.report.cache_pj += CACHE_HIT_PJ * hits + CACHE_MISS_PJ * misses

    def average_power_mw(self, cycles: int) -> float:
        """Average power over a run of ``cycles`` cycles."""
        if cycles <= 0:
            return 0.0
        seconds = cycles * self.machine.clock_ns * 1e-9
        joules = self.report.total_pj * 1e-12
        return joules / seconds * 1e3
