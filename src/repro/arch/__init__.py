"""Table-driven architecture descriptions for the customizable VLIW family.

This package is the "contract between the hardware and the software" in
machine-readable form: machine descriptions (issue width, clusters,
registers, functional units, latencies, caches, encoding, custom
operations), the base-operation classification tables, first-order area,
power and code-size models, preset machines, and ISA-family/drift
bookkeeping.
"""

from .operations import (
    DEFAULT_ENERGY_PJ, DEFAULT_LATENCY, OPCODE_CLASS, OperationClass, classify,
)
from .machine import (
    CacheConfig, CustomOperation, FunctionalUnit, MachineConfigError,
    MachineDescription, default_functional_units,
)
from .area import (
    AreaReport, BASE_CONTROL_KGATES, CACHE_KGATES_PER_KB, REGISTER_KGATES,
    SUPERSCALAR_SLOT_CONTROL_KGATES, UNIT_AREA_KGATES, VLIW_SLOT_CONTROL_KGATES,
    area_ratio, estimate_area,
)
from .power import EnergyModel, EnergyReport, STATIC_MW_PER_KGATE
from .encoding import (
    CodeSizeReport, DEFAULT_OPCODE_BUDGET, code_size, encoding_budget_used,
    fits_encoding_budget, opcode_points_required,
)
from .presets import (
    PRESETS, clustered_vliw4, dsp_core, get_preset, mass_market_superscalar,
    risc_baseline, vliw, vliw2, vliw4, vliw8,
)
from .family import DriftRecord, IsaFamily, compute_drift

__all__ = [
    "DEFAULT_ENERGY_PJ", "DEFAULT_LATENCY", "OPCODE_CLASS", "OperationClass",
    "classify",
    "CacheConfig", "CustomOperation", "FunctionalUnit", "MachineConfigError",
    "MachineDescription", "default_functional_units",
    "AreaReport", "BASE_CONTROL_KGATES", "CACHE_KGATES_PER_KB",
    "REGISTER_KGATES", "SUPERSCALAR_SLOT_CONTROL_KGATES", "UNIT_AREA_KGATES",
    "VLIW_SLOT_CONTROL_KGATES", "area_ratio", "estimate_area",
    "EnergyModel", "EnergyReport", "STATIC_MW_PER_KGATE",
    "CodeSizeReport", "DEFAULT_OPCODE_BUDGET", "code_size",
    "encoding_budget_used", "fits_encoding_budget", "opcode_points_required",
    "PRESETS", "clustered_vliw4", "dsp_core", "get_preset",
    "mass_market_superscalar", "risc_baseline", "vliw", "vliw2", "vliw4",
    "vliw8",
    "DriftRecord", "IsaFamily", "compute_drift",
]
