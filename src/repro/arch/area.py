"""First-order silicon area model for machine descriptions.

The paper's proprietary substrate had real layout data; we substitute a
parametric gate-count model with constants calibrated to publicly quoted
late-1990s figures (a simple 32-bit RISC integer core is on the order of
100K gates plus caches; a 32x32 multiplier is ~20K gates; an SRAM bit is
~1.5 gate-equivalents with overheads).  Absolute numbers are indicative
only — the experiments (notably E2) rely on *relative* areas, i.e. whether
a 4-issue customized VLIW datapath fits in roughly the area of a scalar
RISC with its superscalar-style control removed (paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .machine import MachineDescription
from .operations import OperationClass

#: Gate cost (kgates) of one functional unit instance, per operation class.
UNIT_AREA_KGATES: Dict[OperationClass, float] = {
    OperationClass.IALU: 8.0,
    OperationClass.IMUL: 22.0,
    OperationClass.IDIV: 14.0,
    OperationClass.FPU: 45.0,
    OperationClass.FDIV: 20.0,
    OperationClass.MEM: 10.0,     # AGU + load/store queue slice
    OperationClass.BRANCH: 5.0,
    OperationClass.CUSTOM: 0.0,   # custom units carry their own area
    OperationClass.NOP: 0.0,
}

#: kgates per architectural register (32-bit, multiported register file).
#: Cost grows with the square root of port count which we approximate by
#: scaling with issue width in :func:`estimate_area`.
REGISTER_KGATES = 0.55

#: Fixed overhead of fetch/decode/sequencing for a scalar exposed-pipeline
#: core (no reorder/rename machinery — that is the point of §2.2).
BASE_CONTROL_KGATES = 18.0

#: Incremental decode/dispatch cost per additional issue slot for an
#: exposed (VLIW) encoding: near-linear and small, because the compiler
#: does the scheduling.
VLIW_SLOT_CONTROL_KGATES = 4.0

#: Control cost per issue slot for a *binary-compatible* dynamically
#: scheduled implementation (rename, wakeup/select, reorder buffer slice).
#: Grows super-linearly; used only for the comparison in experiment E2.
SUPERSCALAR_SLOT_CONTROL_KGATES = 55.0

#: kgates per kilobyte of cache SRAM (array + tags + comparators).
CACHE_KGATES_PER_KB = 12.0


@dataclass
class AreaReport:
    """Break-down of the estimated area of a machine (in kgates)."""

    control: float
    functional_units: float
    register_files: float
    custom_units: float
    caches: float

    @property
    def core(self) -> float:
        """Core area excluding caches."""
        return (self.control + self.functional_units + self.register_files
                + self.custom_units)

    @property
    def total(self) -> float:
        return self.core + self.caches

    def as_dict(self) -> Dict[str, float]:
        return {
            "control": self.control,
            "functional_units": self.functional_units,
            "register_files": self.register_files,
            "custom_units": self.custom_units,
            "caches": self.caches,
            "core": self.core,
            "total": self.total,
        }


def estimate_area(machine: MachineDescription,
                  dynamically_scheduled: bool = False) -> AreaReport:
    """Estimate the silicon area of ``machine`` in kgates.

    ``dynamically_scheduled`` costs the control logic as an out-of-order,
    binary-compatible implementation instead of an exposed VLIW pipeline;
    it exists to quantify the §2.2 claim that dropping compatibility
    hardware pays for the extra issue slots.
    """
    slot_control = (SUPERSCALAR_SLOT_CONTROL_KGATES if dynamically_scheduled
                    else VLIW_SLOT_CONTROL_KGATES)
    # Superscalar control grows faster than linearly with width; model the
    # wakeup/select + bypass quadratic term explicitly.
    width = machine.issue_width
    if dynamically_scheduled:
        control = BASE_CONTROL_KGATES + slot_control * width + 6.0 * width * width
    else:
        control = BASE_CONTROL_KGATES + slot_control * (width - 1)

    units = 0.0
    for fu in machine.functional_units:
        per_unit = max(UNIT_AREA_KGATES[c] for c in fu.classes)
        units += per_unit * fu.count

    # Register file cost scales with register count and with the port count
    # needed to feed the per-cluster issue width (2 reads + 1 write per slot).
    ports = 3 * machine.cluster_issue_width
    port_factor = max(1.0, ports / 3.0) ** 0.5
    registers = (REGISTER_KGATES * machine.total_registers * port_factor)

    custom = sum(op.area_kgates for op in machine.custom_ops.values())

    caches = 0.0
    for cache in (machine.icache, machine.dcache):
        if cache is not None:
            caches += CACHE_KGATES_PER_KB * (cache.size_bytes / 1024.0)

    return AreaReport(
        control=control,
        functional_units=units,
        register_files=registers,
        custom_units=custom,
        caches=caches,
    )


def area_ratio(machine: MachineDescription, baseline: MachineDescription,
               include_caches: bool = False) -> float:
    """Core-area ratio machine/baseline (the §2.2 comparison)."""
    a = estimate_area(machine)
    b = estimate_area(baseline)
    if include_caches:
        return a.total / b.total
    return a.core / b.core
