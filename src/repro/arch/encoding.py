"""Instruction-encoding and code-size model.

VLIW machines pay for their exposed parallelism in code size: every issue
slot is a syllable, and empty slots must either be encoded as NOPs or
squeezed out by a compressed ("variable-length bundle") encoding — the
"visible instruction compression" item of paper §1.2.  This module turns a
scheduled program into bytes of instruction memory, and also models how
many opcode points a custom-operation extension consumes (the encoding
budget constraint used by the ISE selector).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .machine import MachineDescription


@dataclass
class CodeSizeReport:
    """Static code-size accounting for one compiled function or module."""

    bundles: int
    operations: int
    nops: int
    bytes_uncompressed: int
    bytes_compressed: int

    @property
    def bytes_effective(self) -> int:
        """Bytes actually stored given the machine's encoding choice."""
        return self.bytes_compressed if self.compressed else self.bytes_uncompressed

    compressed: bool = False

    def as_dict(self) -> Dict[str, int]:
        return {
            "bundles": self.bundles,
            "operations": self.operations,
            "nops": self.nops,
            "bytes_uncompressed": self.bytes_uncompressed,
            "bytes_compressed": self.bytes_compressed,
            "bytes_effective": self.bytes_effective,
        }


def code_size(machine: MachineDescription, bundle_op_counts: List[int]) -> CodeSizeReport:
    """Compute code size for a schedule.

    ``bundle_op_counts`` holds, for each issued bundle (long instruction),
    the number of real operations it contains; the rest of the
    ``issue_width`` slots are NOPs in the uncompressed encoding.

    The compressed encoding models the classic stop-bit scheme: only real
    operations are stored (one syllable each, plus one template byte per
    bundle), which is how VLIWs such as the HP/ST Lx avoid NOP bloat.
    """
    syllable_bytes = machine.syllable_bits // 8
    bundles = len(bundle_op_counts)
    operations = sum(bundle_op_counts)
    nops = bundles * machine.issue_width - operations

    uncompressed = bundles * machine.issue_width * syllable_bytes
    compressed = operations * syllable_bytes + bundles  # + template byte

    return CodeSizeReport(
        bundles=bundles,
        operations=operations,
        nops=nops,
        bytes_uncompressed=uncompressed,
        bytes_compressed=compressed,
        compressed=machine.compressed_encoding,
    )


# ----------------------------------------------------------------------
# Opcode-space budgeting for ISA extensions.
# ----------------------------------------------------------------------

#: Number of primary opcode points available for custom operations in a
#: 32-bit syllable with a 6-bit major opcode field (the remainder is used
#: by the base ISA).
DEFAULT_OPCODE_BUDGET = 16


def opcode_points_required(num_inputs: int, num_outputs: int) -> int:
    """Opcode points one custom operation consumes.

    Operations with more than 2 inputs or more than 1 output need longer
    encodings (extra register specifiers) and are charged extra points,
    modelling the encoding pressure that limits how many wide fused
    operations an ISA can afford.
    """
    points = 1
    if num_inputs > 2:
        points += num_inputs - 2
    if num_outputs > 1:
        points += 2 * (num_outputs - 1)
    return points


def encoding_budget_used(machine: MachineDescription) -> int:
    """Total opcode points consumed by a machine's custom operations."""
    return sum(
        opcode_points_required(op.num_inputs, op.num_outputs)
        for op in machine.custom_ops.values()
    )


def fits_encoding_budget(machine: MachineDescription,
                         budget: int = DEFAULT_OPCODE_BUDGET) -> bool:
    """True if the machine's extensions fit in the opcode budget."""
    return encoding_budget_used(machine) <= budget
