"""Functions: ordered collections of basic blocks with a signature."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .block import BasicBlock
from .instructions import Instruction, Opcode
from .types import FunctionType, Type, VOID
from .values import Argument, VirtualRegister


class Function:
    """A single IR function.

    The first block in ``blocks`` is the entry block.  Functions own their
    argument values and provide helpers for whole-function iteration that
    the optimizer, the back end and the customizer all rely on.
    """

    def __init__(self, name: str, return_type: Type = VOID,
                 param_types: Optional[List[Type]] = None,
                 param_names: Optional[List[str]] = None) -> None:
        self.name = name
        param_types = list(param_types or [])
        param_names = list(param_names or [])
        while len(param_names) < len(param_types):
            param_names.append(f"p{len(param_names)}")
        self.type = FunctionType(return_type, tuple(param_types))
        self.arguments: List[Argument] = [
            Argument(t, n, i) for i, (t, n) in enumerate(zip(param_types, param_names))
        ]
        self.blocks: List[BasicBlock] = []
        self.module = None
        self._block_names: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Block management.
    # ------------------------------------------------------------------
    @property
    def return_type(self) -> Type:
        return self.type.return_type

    @property
    def entry(self) -> BasicBlock:
        """The entry basic block."""
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create, register and return a new uniquely-named basic block."""
        count = self._block_names.get(hint, 0)
        self._block_names[hint] = count + 1
        name = hint if count == 0 else f"{hint}.{count}"
        block = BasicBlock(name)
        block.function = self
        self.blocks.append(block)
        return block

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Register an externally created block."""
        block.function = self
        self.blocks.append(block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        """Remove a (presumed unreachable) block."""
        self.blocks.remove(block)
        block.function = None

    def get_block(self, name: str) -> BasicBlock:
        """Look a block up by name."""
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name} in {self.name}")

    # ------------------------------------------------------------------
    # Iteration helpers.
    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        """Iterate over every instruction in block order."""
        for block in self.blocks:
            yield from block.instructions

    def defined_registers(self) -> List[VirtualRegister]:
        """Every virtual register defined anywhere in the function."""
        regs = []
        seen = set()
        for arg in self.arguments:
            if arg.id not in seen:
                seen.add(arg.id)
                regs.append(arg)
        for inst in self.instructions():
            if inst.dest is not None and inst.dest.id not in seen:
                seen.add(inst.dest.id)
                regs.append(inst.dest)
        return regs

    def instruction_count(self) -> int:
        """Total static instruction count."""
        return sum(len(b) for b in self.blocks)

    def call_targets(self) -> List[str]:
        """Names of functions called (statically) from this function."""
        targets = []
        for inst in self.instructions():
            if inst.opcode is Opcode.CALL and inst.callee not in targets:
                targets.append(inst.callee)
        return targets

    # ------------------------------------------------------------------
    # Printing.
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        params = ", ".join(f"{a.type} {a}" for a in self.arguments)
        lines = [f"function {self.return_type} @{self.name}({params}) {{"]
        for block in self.blocks:
            lines.append(str(block))
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"
