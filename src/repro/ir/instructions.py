"""Instructions of the repro IR.

Every instruction is a three-address operation: an optional destination
virtual register plus a list of operand :class:`~repro.ir.values.Value`\\ s.
The opcode vocabulary intentionally mirrors the primitive operation
repertoire of a simple embedded RISC/VLIW core, because instruction-set
extension candidates are built by grouping these primitives.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

from .types import Type, VOID, I1, I32
from .values import Constant, Value, VirtualRegister


class Opcode(enum.Enum):
    """Primitive IR operations."""

    # Integer arithmetic / logic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"      # logical shift right
    SAR = "sar"      # arithmetic shift right
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    NEG = "neg"
    NOT = "not"
    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    # Comparisons (produce an i1).
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    FCMPEQ = "fcmpeq"
    FCMPLT = "fcmplt"
    FCMPLE = "fcmple"
    # Conversions.
    SEXT = "sext"
    ZEXT = "zext"
    TRUNC = "trunc"
    ITOF = "itof"
    FTOI = "ftoi"
    # Data movement.
    MOV = "mov"
    SELECT = "select"
    # Memory.
    LOAD = "load"
    STORE = "store"
    ALLOCA = "alloca"
    # Control flow.
    JUMP = "jump"
    BRANCH = "branch"
    RETURN = "return"
    CALL = "call"
    # Custom (ISA-extension) operation inserted by the customizer.
    CUSTOM = "custom"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Opcodes that can participate in an instruction-set-extension pattern.
#: Memory and control operations are excluded (the custom functional unit
#: has register-file ports only), as are calls.
FUSABLE_OPCODES = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SHL, Opcode.SHR, Opcode.SAR, Opcode.MIN, Opcode.MAX, Opcode.ABS,
        Opcode.NEG, Opcode.NOT, Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT,
        Opcode.CMPLE, Opcode.CMPGT, Opcode.CMPGE, Opcode.SELECT, Opcode.SEXT,
        Opcode.ZEXT, Opcode.TRUNC, Opcode.MOV,
    }
)

#: Commutative binary opcodes (used by CSE and pattern canonicalisation).
COMMUTATIVE_OPCODES = frozenset(
    {
        Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.MIN, Opcode.MAX, Opcode.FADD, Opcode.FMUL,
        Opcode.CMPEQ, Opcode.CMPNE, Opcode.FCMPEQ,
    }
)

#: Opcodes with side effects or ordering constraints.
SIDE_EFFECT_OPCODES = frozenset(
    {Opcode.STORE, Opcode.CALL, Opcode.RETURN, Opcode.JUMP, Opcode.BRANCH}
)

#: Control-flow terminators.
TERMINATOR_OPCODES = frozenset({Opcode.JUMP, Opcode.BRANCH, Opcode.RETURN})

#: Pure integer ALU ops (single-cycle on the baseline machine).
INT_ALU_OPCODES = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL,
        Opcode.SHR, Opcode.SAR, Opcode.MIN, Opcode.MAX, Opcode.ABS, Opcode.NEG,
        Opcode.NOT, Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
        Opcode.CMPGT, Opcode.CMPGE, Opcode.SELECT, Opcode.MOV, Opcode.SEXT,
        Opcode.ZEXT, Opcode.TRUNC,
    }
)


class Instruction:
    """A single IR instruction.

    Attributes
    ----------
    opcode:
        The primitive operation.
    dest:
        Destination :class:`VirtualRegister`, or ``None`` for instructions
        that produce no value (stores, branches, void calls).
    operands:
        Input values, in positional order.
    block:
        Back-reference to the owning basic block (set on insertion).
    """

    __slots__ = ("opcode", "dest", "operands", "block", "targets", "callee",
                 "custom_op", "alloc_type", "annotations")

    def __init__(
        self,
        opcode: Opcode,
        dest: Optional[VirtualRegister] = None,
        operands: Optional[Sequence[Value]] = None,
        targets: Optional[list] = None,
        callee: Optional[str] = None,
        custom_op: Optional[str] = None,
        alloc_type: Optional[Type] = None,
    ) -> None:
        self.opcode = opcode
        self.dest = dest
        self.operands: List[Value] = list(operands or [])
        #: successor basic blocks for jump/branch instructions.
        self.targets = list(targets or [])
        #: callee name for CALL instructions.
        self.callee = callee
        #: name of the custom (fused) operation for CUSTOM instructions.
        self.custom_op = custom_op
        #: element type for ALLOCA instructions.
        self.alloc_type = alloc_type
        self.block = None
        #: free-form annotations used by passes (profiling weights etc.).
        self.annotations: dict = {}

    # ------------------------------------------------------------------
    # Classification helpers.
    # ------------------------------------------------------------------
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATOR_OPCODES

    def has_side_effects(self) -> bool:
        return self.opcode in SIDE_EFFECT_OPCODES

    def is_pure(self) -> bool:
        """True if the instruction can be removed when its result is dead."""
        return (
            not self.has_side_effects()
            and self.opcode not in (Opcode.LOAD, Opcode.ALLOCA, Opcode.CALL)
        )

    def is_fusable(self) -> bool:
        """True if the instruction may be absorbed into a custom operation."""
        return self.opcode in FUSABLE_OPCODES

    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE)

    def is_call(self) -> bool:
        return self.opcode is Opcode.CALL

    # ------------------------------------------------------------------
    # Operand management.
    # ------------------------------------------------------------------
    def uses(self) -> List[VirtualRegister]:
        """Virtual registers read by this instruction."""
        return [op for op in self.operands if isinstance(op, VirtualRegister)]

    def defs(self) -> List[VirtualRegister]:
        """Virtual registers written by this instruction."""
        return [self.dest] if self.dest is not None else []

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` with ``new``; return count."""
        count = 0
        for i, op in enumerate(self.operands):
            if op is old or op == old:
                self.operands[i] = new
                count += 1
        return count

    # ------------------------------------------------------------------
    # Printing.
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = []
        if self.dest is not None:
            parts.append(f"{self.dest} = ")
        name = self.custom_op if self.opcode is Opcode.CUSTOM else self.opcode.value
        parts.append(name)
        if self.callee:
            parts.append(f" @{self.callee}")
        if self.alloc_type is not None:
            parts.append(f" {self.alloc_type}")
        if self.operands:
            parts.append(" " + ", ".join(str(op) for op in self.operands))
        if self.targets:
            parts.append(" -> " + ", ".join(t.name for t in self.targets))
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instruction {self}>"


# ----------------------------------------------------------------------
# Convenience constructors.  The builder uses these; tests may use them
# directly when constructing IR by hand.
# ----------------------------------------------------------------------

def binop(opcode: Opcode, dest: VirtualRegister, lhs: Value, rhs: Value) -> Instruction:
    """Create a binary arithmetic/logic instruction."""
    return Instruction(opcode, dest, [lhs, rhs])


def unop(opcode: Opcode, dest: VirtualRegister, src: Value) -> Instruction:
    """Create a unary instruction."""
    return Instruction(opcode, dest, [src])


def move(dest: VirtualRegister, src: Value) -> Instruction:
    """Copy ``src`` into ``dest``."""
    return Instruction(Opcode.MOV, dest, [src])


def load(dest: VirtualRegister, address: Value) -> Instruction:
    """Load ``dest.type`` bytes from ``address``."""
    return Instruction(Opcode.LOAD, dest, [address])


def store(value: Value, address: Value) -> Instruction:
    """Store ``value`` to ``address``."""
    return Instruction(Opcode.STORE, None, [value, address])


def alloca(dest: VirtualRegister, type_: Type, count: int = 1) -> Instruction:
    """Reserve stack space for ``count`` elements of ``type_``."""
    return Instruction(
        Opcode.ALLOCA, dest, [Constant(count, I32)], alloc_type=type_
    )


def jump(target) -> Instruction:
    """Unconditional jump."""
    return Instruction(Opcode.JUMP, targets=[target])


def branch(cond: Value, if_true, if_false) -> Instruction:
    """Conditional branch on an i1 value."""
    return Instruction(Opcode.BRANCH, operands=[cond], targets=[if_true, if_false])


def ret(value: Optional[Value] = None) -> Instruction:
    """Return from the current function."""
    return Instruction(Opcode.RETURN, operands=[value] if value is not None else [])


def call(dest: Optional[VirtualRegister], callee: str, args: Sequence[Value]) -> Instruction:
    """Call a function by name."""
    return Instruction(Opcode.CALL, dest, list(args), callee=callee)


def select(dest: VirtualRegister, cond: Value, if_true: Value, if_false: Value) -> Instruction:
    """dest = cond ? if_true : if_false."""
    return Instruction(Opcode.SELECT, dest, [cond, if_true, if_false])


def custom(dest: Optional[VirtualRegister], name: str, args: Sequence[Value]) -> Instruction:
    """An application-specific (ISA-extension) operation."""
    return Instruction(Opcode.CUSTOM, dest, list(args), custom_op=name)
