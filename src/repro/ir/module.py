"""Modules: the IR compilation unit (functions plus global variables)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .function import Function
from .types import Type
from .values import GlobalVariable


class Module:
    """A compilation unit: a set of functions and global variables.

    The module is the unit handed to the optimizer, the customizer and the
    back end, and the unit loaded by the simulators.
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    # ------------------------------------------------------------------
    # Functions.
    # ------------------------------------------------------------------
    def add_function(self, function: Function) -> Function:
        """Register ``function`` in this module."""
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name}")
        function.module = self
        self.functions[function.name] = function
        return function

    def get_function(self, name: str) -> Function:
        """Look a function up by name."""
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name} in module {self.name}") from None

    def has_function(self, name: str) -> bool:
        return name in self.functions

    def remove_function(self, name: str) -> None:
        function = self.functions.pop(name)
        function.module = None

    # ------------------------------------------------------------------
    # Globals.
    # ------------------------------------------------------------------
    def add_global(self, name: str, type_: Type, initializer=None) -> GlobalVariable:
        """Declare a global variable and return the value naming it."""
        if name in self.globals:
            raise ValueError(f"duplicate global {name}")
        gvar = GlobalVariable(name, type_, initializer)
        self.globals[name] = gvar
        return gvar

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise KeyError(f"no global named {name} in module {self.name}") from None

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def instruction_count(self) -> int:
        """Total static instruction count over all functions."""
        return sum(f.instruction_count() for f in self.functions.values())

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __str__(self) -> str:
        lines = [f"; module {self.name}"]
        for gvar in self.globals.values():
            lines.append(f"global {gvar.value_type} @{gvar.name}")
        for function in self.functions.values():
            lines.append("")
            lines.append(str(function))
        return "\n".join(lines)

    def clone(self) -> "Module":
        """Deep-copy this module.

        Cloning is used by the design-space explorer and the N×M test matrix
        so that per-architecture transformations (custom-op rewriting,
        unrolling decisions) never contaminate the pristine input IR.
        """
        from .clone import clone_module

        return clone_module(self)
