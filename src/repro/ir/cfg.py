"""Control-flow-graph analyses: reachability, dominators, loops, frequencies.

These analyses feed three consumers:

* the optimizer (dead block elimination, loop unrolling),
* the ISE customizer (loop nesting depth drives static execution-frequency
  estimates when no profile is available), and
* the back end (block layout).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from .block import BasicBlock
from .function import Function


def build_cfg(function: Function) -> nx.DiGraph:
    """Return the control-flow graph of ``function`` as a networkx digraph.

    Nodes are :class:`BasicBlock` objects; edges follow terminator targets.
    """
    graph = nx.DiGraph()
    for block in function.blocks:
        graph.add_node(block)
    for block in function.blocks:
        for succ in block.successors():
            graph.add_edge(block, succ)
    return graph


def reachable_blocks(function: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry block."""
    if not function.blocks:
        return set()
    graph = build_cfg(function)
    entry = function.entry
    return {entry} | set(nx.descendants(graph, entry))


def remove_unreachable_blocks(function: Function) -> int:
    """Delete unreachable blocks; return how many were removed."""
    reachable = reachable_blocks(function)
    dead = [b for b in function.blocks if b not in reachable]
    for block in dead:
        function.remove_block(block)
    return len(dead)


def compute_dominators(function: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Return, for each reachable block, the set of blocks dominating it."""
    graph = build_cfg(function)
    entry = function.entry
    idom = dict(nx.immediate_dominators(graph, entry))
    # Some networkx versions omit the self-entry; normalise it.
    idom[entry] = entry
    doms: Dict[BasicBlock, Set[BasicBlock]] = {}
    for block in graph.nodes:
        if block not in idom:
            continue
        dominators = {block}
        runner = block
        while idom[runner] is not runner:
            runner = idom[runner]
            dominators.add(runner)
        doms[block] = dominators
    return doms


def find_natural_loops(function: Function) -> List[Tuple[BasicBlock, Set[BasicBlock]]]:
    """Find natural loops via back-edge detection.

    Returns a list of ``(header, body_blocks)`` tuples where ``body_blocks``
    includes the header.
    """
    doms = compute_dominators(function)
    graph = build_cfg(function)
    loops: List[Tuple[BasicBlock, Set[BasicBlock]]] = []
    for tail, header in graph.edges:
        if header in doms.get(tail, set()):
            # Back edge tail -> header: collect the natural loop body.
            body = {header, tail}
            stack = [tail]
            while stack:
                node = stack.pop()
                if node is header:
                    continue
                for pred in graph.predecessors(node):
                    if pred not in body:
                        body.add(pred)
                        stack.append(pred)
            loops.append((header, body))
    return loops


def loop_nesting_depth(function: Function) -> Dict[BasicBlock, int]:
    """Number of natural loops each block belongs to."""
    depth = {block: 0 for block in function.blocks}
    for _header, body in find_natural_loops(function):
        for block in body:
            depth[block] = depth.get(block, 0) + 1
    return depth


def estimate_block_frequencies(function: Function, loop_weight: float = 10.0) -> None:
    """Set ``block.frequency`` from static loop-nesting heuristics.

    A block nested ``d`` loops deep is assumed to execute ``loop_weight**d``
    times per function invocation; this mirrors the classic static profile
    estimate used when no measured profile is available.  Measured profiles
    (from the functional simulator) overwrite these estimates.
    """
    depth = loop_nesting_depth(function)
    for block in function.blocks:
        block.frequency = float(loop_weight ** depth.get(block, 0))


def topological_block_order(function: Function) -> List[BasicBlock]:
    """Blocks in reverse-post-order (a good scheduling / layout order)."""
    graph = build_cfg(function)
    entry = function.entry
    order: List[BasicBlock] = []
    visited: Set[BasicBlock] = set()

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(sorted(graph.successors(block), key=lambda b: b.name)))]
        visited.add(block)
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if succ not in visited:
                    visited.add(succ)
                    stack.append(
                        (succ, iter(sorted(graph.successors(succ), key=lambda b: b.name)))
                    )
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    visit(entry)
    order.reverse()
    # Unreachable blocks go at the end in their original order.
    for block in function.blocks:
        if block not in visited:
            order.append(block)
    return order


def critical_edges(function: Function) -> List[Tuple[BasicBlock, BasicBlock]]:
    """Edges from a block with >1 successors to a block with >1 predecessors."""
    result = []
    for block in function.blocks:
        succs = block.successors()
        if len(succs) <= 1:
            continue
        for succ in succs:
            if len(succ.predecessors()) > 1:
                result.append((block, succ))
    return result
