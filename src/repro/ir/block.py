"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from .instructions import Instruction


class BasicBlock:
    """A maximal straight-line sequence of instructions.

    Blocks are owned by a :class:`~repro.ir.function.Function`; the last
    instruction of a complete block is always a terminator (jump, branch or
    return).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: List[Instruction] = []
        self.function = None
        #: estimated/profiled execution frequency, set by the profiler or
        #: by static loop-nesting heuristics.  Used to weight ISE gains.
        self.frequency: float = 1.0

    # ------------------------------------------------------------------
    # Mutation.
    # ------------------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        """Append ``inst`` and take ownership of it."""
        inst.block = self
        self.instructions.append(inst)
        return inst

    def insert(self, index: int, inst: Instruction) -> Instruction:
        """Insert ``inst`` at ``index``."""
        inst.block = self
        self.instructions.insert(index, inst)
        return inst

    def remove(self, inst: Instruction) -> None:
        """Remove ``inst`` from this block."""
        self.instructions.remove(inst)
        inst.block = None

    def replace(self, old: Instruction, new_insts: List[Instruction]) -> None:
        """Replace ``old`` with a sequence of new instructions in place."""
        index = self.instructions.index(old)
        self.instructions[index:index + 1] = new_insts
        old.block = None
        for inst in new_insts:
            inst.block = self

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's terminator, or ``None`` if the block is incomplete."""
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> List["BasicBlock"]:
        """Blocks this block may transfer control to."""
        term = self.terminator
        if term is None:
            return []
        return list(term.targets)

    def predecessors(self) -> List["BasicBlock"]:
        """Blocks that may transfer control to this block."""
        if self.function is None:
            return []
        return [b for b in self.function.blocks if self in b.successors()]

    def non_terminator_instructions(self) -> List[Instruction]:
        """All instructions except the terminator."""
        term = self.terminator
        if term is None:
            return list(self.instructions)
        return self.instructions[:-1]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines.extend(f"  {inst}" for inst in self.instructions)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"
