"""Values of the repro IR: constants, virtual registers, globals, arguments.

The IR is a load/store, three-address, *non-SSA* representation built on
virtual registers.  Virtual registers may be assigned more than once (the
front end emits straight-line assignments for mutable C locals), which keeps
the representation simple while still allowing per-basic-block dataflow
graphs — the unit on which instruction-set extensions are identified — to be
extracted precisely.
"""

from __future__ import annotations

import struct
from typing import Optional

from .types import FloatType, IntType, PointerType, Type, I32, F32


class Value:
    """Anything that can appear as an operand of an instruction."""

    def __init__(self, type_: Type, name: str = "") -> None:
        self.type = type_
        self.name = name

    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    def is_register(self) -> bool:
        return isinstance(self, VirtualRegister)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


class Constant(Value):
    """An immediate integer or floating-point constant."""

    def __init__(self, value, type_: Optional[Type] = None) -> None:
        if type_ is None:
            type_ = F32 if isinstance(value, float) else I32
        super().__init__(type_)
        if isinstance(type_, IntType):
            value = type_.wrap(int(value))
        elif isinstance(type_, FloatType):
            # Round-trip through binary32 so the IR sees the same rounding
            # behaviour the simulated hardware will.
            if type_.bits == 32:
                value = struct.unpack("<f", struct.pack("<f", float(value)))[0]
            else:
                value = float(value)
        self.value = value

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constant)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((type(self), self.type, self.value))

    def __str__(self) -> str:
        return f"{self.value}:{self.type}"


class VirtualRegister(Value):
    """A compiler temporary.  Identified by a unique integer id."""

    _counter = 0

    def __init__(self, type_: Type, name: str = "") -> None:
        super().__init__(type_, name)
        VirtualRegister._counter += 1
        self.id = VirtualRegister._counter

    def __str__(self) -> str:
        if self.name:
            return f"%{self.name}.{self.id}"
        return f"%t{self.id}"

    def __hash__(self) -> int:
        return hash(self.id)

    def __eq__(self, other) -> bool:
        return isinstance(other, VirtualRegister) and other.id == self.id


class Argument(VirtualRegister):
    """A formal parameter of a function.  Behaves like a virtual register."""

    def __init__(self, type_: Type, name: str, index: int) -> None:
        super().__init__(type_, name)
        self.index = index

    def __str__(self) -> str:
        return f"%arg.{self.name}"


class GlobalVariable(Value):
    """A module-level variable with a fixed address assigned at link time.

    ``initializer`` is either ``None`` (zero-filled), a list of numbers
    (array contents) or a single number.
    """

    def __init__(self, name: str, type_: Type, initializer=None) -> None:
        super().__init__(PointerType(type_), name)
        self.value_type = type_
        self.initializer = initializer
        #: assigned by the linker / simulator loader.
        self.address: Optional[int] = None

    def __str__(self) -> str:
        return f"@{self.name}"


class UndefValue(Value):
    """A value with unspecified contents (used for uninitialised locals)."""

    def __str__(self) -> str:
        return f"undef:{self.type}"
