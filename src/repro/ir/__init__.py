"""The repro intermediate representation.

A small, typed, load/store, three-address IR on virtual registers.  It is
the common currency between the C front end, the machine-independent
optimizer, the ISA customizer, the retargetable VLIW back end and the
functional simulator.
"""

from .types import (
    ArrayType, FloatType, FunctionType, IntType, PointerType, Type, VoidType,
    F32, F64, I1, I8, I16, I32, I64, PTR, U8, U16, U32, VOID,
    array_of, pointer_to,
)
from .values import (
    Argument, Constant, GlobalVariable, UndefValue, Value, VirtualRegister,
)
from .instructions import (
    COMMUTATIVE_OPCODES, FUSABLE_OPCODES, INT_ALU_OPCODES, Instruction, Opcode,
    SIDE_EFFECT_OPCODES, TERMINATOR_OPCODES,
)
from .block import BasicBlock
from .function import Function
from .module import Module
from .builder import IRBuilder
from .clone import clone_function, clone_module
from .cfg import (
    build_cfg, compute_dominators, critical_edges, estimate_block_frequencies,
    find_natural_loops, loop_nesting_depth, reachable_blocks,
    remove_unreachable_blocks, topological_block_order,
)
from .dataflow import DataflowGraph, build_dataflow_graph
from .verifier import VerificationError, assert_valid, verify_function, verify_module

__all__ = [
    "ArrayType", "FloatType", "FunctionType", "IntType", "PointerType", "Type",
    "VoidType", "F32", "F64", "I1", "I8", "I16", "I32", "I64", "PTR", "U8",
    "U16", "U32", "VOID", "array_of", "pointer_to",
    "Argument", "Constant", "GlobalVariable", "UndefValue", "Value",
    "VirtualRegister",
    "COMMUTATIVE_OPCODES", "FUSABLE_OPCODES", "INT_ALU_OPCODES", "Instruction",
    "Opcode", "SIDE_EFFECT_OPCODES", "TERMINATOR_OPCODES",
    "BasicBlock", "Function", "Module", "IRBuilder",
    "clone_function", "clone_module",
    "build_cfg", "compute_dominators", "critical_edges",
    "estimate_block_frequencies", "find_natural_loops", "loop_nesting_depth",
    "reachable_blocks", "remove_unreachable_blocks", "topological_block_order",
    "DataflowGraph", "build_dataflow_graph",
    "VerificationError", "assert_valid", "verify_function", "verify_module",
]
