"""Type system for the repro intermediate representation.

The IR is deliberately small: it models the scalar types that matter for
embedded kernels (integers of a few widths, single-precision floats,
byte-addressed pointers) plus array types for globals and stack frames.
Every type knows its size and alignment so that the front end, the code
generator and the simulators agree on memory layout.
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class for all IR types."""

    #: size of a value of this type in bytes (0 for void/label).
    size: int = 0

    @property
    def alignment(self) -> int:
        """Natural alignment in bytes (size, but at least 1)."""
        return max(1, self.size)

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    def is_scalar(self) -> bool:
        return self.is_integer() or self.is_float() or self.is_pointer()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return str(self)


@dataclass(frozen=True)
class VoidType(Type):
    """The type of instructions that produce no value."""

    size: int = 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """A two's-complement integer of ``bits`` width.

    ``signed`` only affects the semantics of comparisons, division and
    right shifts; storage is identical.
    """

    bits: int = 32
    signed: bool = True

    def __post_init__(self) -> None:
        if self.bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {self.bits}")

    @property
    def size(self) -> int:  # type: ignore[override]
        return max(1, self.bits // 8)

    @property
    def min_value(self) -> int:
        if not self.signed:
            return 0
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        if not self.signed:
            return (1 << self.bits) - 1
        return (1 << (self.bits - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap ``value`` to this type's range (two's complement)."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.signed and value >= (1 << (self.bits - 1)):
            value -= 1 << self.bits
        return value

    def __str__(self) -> str:
        prefix = "i" if self.signed else "u"
        return f"{prefix}{self.bits}"


@dataclass(frozen=True)
class FloatType(Type):
    """An IEEE-754 binary32 floating point value."""

    bits: int = 32

    def __post_init__(self) -> None:
        if self.bits not in (32, 64):
            raise ValueError(f"unsupported float width: {self.bits}")

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.bits // 8

    def __str__(self) -> str:
        return f"f{self.bits}"


@dataclass(frozen=True)
class PointerType(Type):
    """A byte address.  Pointers are 32 bits wide on every target machine."""

    pointee: Type = None  # type: ignore[assignment]

    @property
    def size(self) -> int:  # type: ignore[override]
        return 4

    def __str__(self) -> str:
        if self.pointee is None:
            return "ptr"
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    """A fixed-length array, used for globals and stack allocations."""

    element: Type = None  # type: ignore[assignment]
    count: int = 0

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.element.size * self.count

    @property
    def alignment(self) -> int:
        return self.element.alignment

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


@dataclass(frozen=True)
class FunctionType(Type):
    """Signature of a function: return type plus parameter types."""

    return_type: Type = None  # type: ignore[assignment]
    param_types: tuple = ()

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        return f"{self.return_type} ({params})"


# Canonical singletons used throughout the code base.
VOID = VoidType()
I1 = IntType(1, signed=False)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
U8 = IntType(8, signed=False)
U16 = IntType(16, signed=False)
U32 = IntType(32, signed=False)
F32 = FloatType(32)
F64 = FloatType(64)
PTR = PointerType(I32)


def pointer_to(pointee: Type) -> PointerType:
    """Return a pointer type to ``pointee``."""
    return PointerType(pointee)


def array_of(element: Type, count: int) -> ArrayType:
    """Return a fixed-size array type."""
    if count < 0:
        raise ValueError("array length must be non-negative")
    return ArrayType(element, count)
