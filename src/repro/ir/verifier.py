"""IR verifier: structural well-formedness checks.

The verifier is run after the front end, after every optimization pass in
debug/test configurations, and before the back end.  It catches the classes
of bug that otherwise show up as baffling mis-schedules or simulator
divergence much later in the pipeline.
"""

from __future__ import annotations

from typing import List

from .function import Function
from .instructions import Opcode
from .module import Module
from .values import Argument, Constant, GlobalVariable, UndefValue, VirtualRegister


class VerificationError(Exception):
    """Raised when a module or function violates IR invariants."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("\n".join(errors))
        self.errors = errors


#: Expected operand counts per opcode; ``None`` means variable.
_OPERAND_COUNTS = {
    Opcode.ADD: 2, Opcode.SUB: 2, Opcode.MUL: 2, Opcode.DIV: 2, Opcode.REM: 2,
    Opcode.AND: 2, Opcode.OR: 2, Opcode.XOR: 2, Opcode.SHL: 2, Opcode.SHR: 2,
    Opcode.SAR: 2, Opcode.MIN: 2, Opcode.MAX: 2,
    Opcode.FADD: 2, Opcode.FSUB: 2, Opcode.FMUL: 2, Opcode.FDIV: 2,
    Opcode.CMPEQ: 2, Opcode.CMPNE: 2, Opcode.CMPLT: 2, Opcode.CMPLE: 2,
    Opcode.CMPGT: 2, Opcode.CMPGE: 2, Opcode.FCMPEQ: 2, Opcode.FCMPLT: 2,
    Opcode.FCMPLE: 2,
    Opcode.ABS: 1, Opcode.NEG: 1, Opcode.NOT: 1, Opcode.FNEG: 1,
    Opcode.SEXT: 1, Opcode.ZEXT: 1, Opcode.TRUNC: 1, Opcode.ITOF: 1,
    Opcode.FTOI: 1, Opcode.MOV: 1,
    Opcode.SELECT: 3,
    Opcode.LOAD: 1, Opcode.STORE: 2, Opcode.ALLOCA: 1,
    Opcode.JUMP: 0, Opcode.BRANCH: 1,
    Opcode.RETURN: None, Opcode.CALL: None, Opcode.CUSTOM: None,
}

#: Opcodes that must define a destination register.
_REQUIRES_DEST = {
    op for op, count in _OPERAND_COUNTS.items()
    if op not in (
        Opcode.STORE, Opcode.JUMP, Opcode.BRANCH, Opcode.RETURN,
        Opcode.CALL, Opcode.CUSTOM,
    )
}


def verify_function(function: Function) -> List[str]:
    """Return a list of invariant violations (empty when well formed)."""
    errors: List[str] = []
    where = f"function @{function.name}"

    if not function.blocks:
        errors.append(f"{where}: has no basic blocks")
        return errors

    block_set = set(function.blocks)
    seen_names = set()
    for block in function.blocks:
        if block.name in seen_names:
            errors.append(f"{where}: duplicate block name {block.name}")
        seen_names.add(block.name)
        if block.function is not function:
            errors.append(f"{where}: block {block.name} has a stale function link")

        term = block.terminator
        if term is None:
            errors.append(f"{where}: block {block.name} is not terminated")
        for i, inst in enumerate(block.instructions):
            label = f"{where}, block {block.name}, inst {i} ({inst.opcode.value})"
            if inst.block is not block:
                errors.append(f"{label}: stale block link")
            if inst.is_terminator() and inst is not block.instructions[-1]:
                errors.append(f"{label}: terminator is not the last instruction")

            expected = _OPERAND_COUNTS.get(inst.opcode)
            if expected is not None and len(inst.operands) != expected:
                errors.append(
                    f"{label}: expects {expected} operands, has {len(inst.operands)}"
                )
            if inst.opcode in _REQUIRES_DEST and inst.dest is None:
                errors.append(f"{label}: missing destination register")
            if inst.opcode in (Opcode.STORE, Opcode.JUMP, Opcode.BRANCH,
                               Opcode.RETURN) and inst.dest is not None:
                errors.append(f"{label}: must not define a destination register")

            if inst.opcode is Opcode.JUMP and len(inst.targets) != 1:
                errors.append(f"{label}: jump needs exactly one target")
            if inst.opcode is Opcode.BRANCH and len(inst.targets) != 2:
                errors.append(f"{label}: branch needs exactly two targets")
            if inst.opcode is Opcode.CALL and not inst.callee:
                errors.append(f"{label}: call without a callee name")
            if inst.opcode is Opcode.CUSTOM and not inst.custom_op:
                errors.append(f"{label}: custom op without a name")
            for target in inst.targets:
                if target not in block_set:
                    errors.append(
                        f"{label}: branch target {target.name} not in function"
                    )
            for op in inst.operands:
                if not isinstance(op, (VirtualRegister, Constant, GlobalVariable,
                                       UndefValue, Argument)):
                    errors.append(f"{label}: invalid operand {op!r}")

        # Return type consistency.
        if term is not None and term.opcode is Opcode.RETURN:
            if function.return_type.is_void() and term.operands:
                errors.append(
                    f"{where}: block {block.name} returns a value from a void function"
                )
            if not function.return_type.is_void() and not term.operands:
                errors.append(
                    f"{where}: block {block.name} returns void from a non-void function"
                )

    return errors


def verify_module(module: Module) -> List[str]:
    """Verify every function in ``module``; also check call targets exist."""
    errors: List[str] = []
    for function in module.functions.values():
        errors.extend(verify_function(function))
        for callee in function.call_targets():
            if callee not in module.functions and not callee.startswith("__"):
                errors.append(
                    f"function @{function.name}: calls unknown function @{callee}"
                )
    return errors


def assert_valid(module_or_function) -> None:
    """Raise :class:`VerificationError` if the IR is malformed."""
    if isinstance(module_or_function, Module):
        errors = verify_module(module_or_function)
    else:
        errors = verify_function(module_or_function)
    if errors:
        raise VerificationError(errors)
