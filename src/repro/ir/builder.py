"""IRBuilder: a convenience API for constructing IR programmatically.

The front end lowers C through this builder; examples and tests may also
use it directly to construct kernels without going through C source.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from . import instructions as insts
from .block import BasicBlock
from .function import Function
from .instructions import Instruction, Opcode
from .module import Module
from .types import FloatType, IntType, PointerType, Type, F32, I1, I32, VOID
from .values import Constant, Value, VirtualRegister

Operand = Union[Value, int, float]


class IRBuilder:
    """Builds instructions at an insertion point inside a function."""

    def __init__(self, module: Optional[Module] = None) -> None:
        self.module = module or Module()
        self.function: Optional[Function] = None
        self.block: Optional[BasicBlock] = None

    # ------------------------------------------------------------------
    # Positioning.
    # ------------------------------------------------------------------
    def create_function(self, name: str, return_type: Type = VOID,
                        param_types: Optional[Sequence[Type]] = None,
                        param_names: Optional[Sequence[str]] = None) -> Function:
        """Create a function, register it, and position at a fresh entry block."""
        function = Function(name, return_type, list(param_types or []),
                            list(param_names or []))
        self.module.add_function(function)
        self.function = function
        self.block = function.new_block("entry")
        return function

    def set_insert_point(self, block: BasicBlock) -> None:
        """Direct subsequent instructions into ``block``."""
        self.block = block
        self.function = block.function

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Create a new block in the current function (does not reposition)."""
        if self.function is None:
            raise RuntimeError("no current function")
        return self.function.new_block(hint)

    # ------------------------------------------------------------------
    # Value coercion.
    # ------------------------------------------------------------------
    def _coerce(self, value: Operand, type_: Optional[Type] = None) -> Value:
        if isinstance(value, Value):
            return value
        if isinstance(value, bool):
            return Constant(int(value), I1)
        if isinstance(value, int):
            return Constant(value, type_ if isinstance(type_, IntType) else I32)
        if isinstance(value, float):
            return Constant(value, type_ if isinstance(type_, FloatType) else F32)
        raise TypeError(f"cannot use {value!r} as an IR operand")

    def _emit(self, inst: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("no insertion point set")
        if self.block.is_terminated():
            raise RuntimeError(f"block {self.block.name} is already terminated")
        return self.block.append(inst)

    def _temp(self, type_: Type, name: str = "") -> VirtualRegister:
        return VirtualRegister(type_, name)

    # ------------------------------------------------------------------
    # Arithmetic / logic.
    # ------------------------------------------------------------------
    def _binary(self, opcode: Opcode, lhs: Operand, rhs: Operand,
                result_type: Optional[Type] = None, name: str = "") -> VirtualRegister:
        lhs_v = self._coerce(lhs)
        rhs_v = self._coerce(rhs, lhs_v.type)
        dest = self._temp(result_type or lhs_v.type, name)
        self._emit(insts.binop(opcode, dest, lhs_v, rhs_v))
        return dest

    def add(self, lhs, rhs, name=""):
        """Integer addition."""
        return self._binary(Opcode.ADD, lhs, rhs, name=name)

    def sub(self, lhs, rhs, name=""):
        """Integer subtraction."""
        return self._binary(Opcode.SUB, lhs, rhs, name=name)

    def mul(self, lhs, rhs, name=""):
        """Integer multiplication."""
        return self._binary(Opcode.MUL, lhs, rhs, name=name)

    def div(self, lhs, rhs, name=""):
        """Integer division (truncating, signedness from operand type)."""
        return self._binary(Opcode.DIV, lhs, rhs, name=name)

    def rem(self, lhs, rhs, name=""):
        """Integer remainder."""
        return self._binary(Opcode.REM, lhs, rhs, name=name)

    def and_(self, lhs, rhs, name=""):
        """Bitwise AND."""
        return self._binary(Opcode.AND, lhs, rhs, name=name)

    def or_(self, lhs, rhs, name=""):
        """Bitwise OR."""
        return self._binary(Opcode.OR, lhs, rhs, name=name)

    def xor(self, lhs, rhs, name=""):
        """Bitwise XOR."""
        return self._binary(Opcode.XOR, lhs, rhs, name=name)

    def shl(self, lhs, rhs, name=""):
        """Shift left."""
        return self._binary(Opcode.SHL, lhs, rhs, name=name)

    def shr(self, lhs, rhs, name=""):
        """Logical shift right."""
        return self._binary(Opcode.SHR, lhs, rhs, name=name)

    def sar(self, lhs, rhs, name=""):
        """Arithmetic shift right."""
        return self._binary(Opcode.SAR, lhs, rhs, name=name)

    def min(self, lhs, rhs, name=""):
        """Integer minimum."""
        return self._binary(Opcode.MIN, lhs, rhs, name=name)

    def max(self, lhs, rhs, name=""):
        """Integer maximum."""
        return self._binary(Opcode.MAX, lhs, rhs, name=name)

    def fadd(self, lhs, rhs, name=""):
        """Floating-point addition."""
        return self._binary(Opcode.FADD, lhs, rhs, name=name)

    def fsub(self, lhs, rhs, name=""):
        """Floating-point subtraction."""
        return self._binary(Opcode.FSUB, lhs, rhs, name=name)

    def fmul(self, lhs, rhs, name=""):
        """Floating-point multiplication."""
        return self._binary(Opcode.FMUL, lhs, rhs, name=name)

    def fdiv(self, lhs, rhs, name=""):
        """Floating-point division."""
        return self._binary(Opcode.FDIV, lhs, rhs, name=name)

    def neg(self, src, name=""):
        """Integer negation."""
        src_v = self._coerce(src)
        dest = self._temp(src_v.type, name)
        self._emit(insts.unop(Opcode.NEG, dest, src_v))
        return dest

    def not_(self, src, name=""):
        """Bitwise complement."""
        src_v = self._coerce(src)
        dest = self._temp(src_v.type, name)
        self._emit(insts.unop(Opcode.NOT, dest, src_v))
        return dest

    def abs(self, src, name=""):
        """Integer absolute value."""
        src_v = self._coerce(src)
        dest = self._temp(src_v.type, name)
        self._emit(insts.unop(Opcode.ABS, dest, src_v))
        return dest

    # ------------------------------------------------------------------
    # Comparisons.
    # ------------------------------------------------------------------
    def _compare(self, opcode: Opcode, lhs, rhs, name=""):
        lhs_v = self._coerce(lhs)
        rhs_v = self._coerce(rhs, lhs_v.type)
        dest = self._temp(I1, name)
        self._emit(insts.binop(opcode, dest, lhs_v, rhs_v))
        return dest

    def cmp_eq(self, lhs, rhs, name=""):
        """Integer equality comparison."""
        return self._compare(Opcode.CMPEQ, lhs, rhs, name)

    def cmp_ne(self, lhs, rhs, name=""):
        """Integer inequality comparison."""
        return self._compare(Opcode.CMPNE, lhs, rhs, name)

    def cmp_lt(self, lhs, rhs, name=""):
        """Signed less-than comparison."""
        return self._compare(Opcode.CMPLT, lhs, rhs, name)

    def cmp_le(self, lhs, rhs, name=""):
        """Signed less-or-equal comparison."""
        return self._compare(Opcode.CMPLE, lhs, rhs, name)

    def cmp_gt(self, lhs, rhs, name=""):
        """Signed greater-than comparison."""
        return self._compare(Opcode.CMPGT, lhs, rhs, name)

    def cmp_ge(self, lhs, rhs, name=""):
        """Signed greater-or-equal comparison."""
        return self._compare(Opcode.CMPGE, lhs, rhs, name)

    def fcmp_lt(self, lhs, rhs, name=""):
        """Floating-point less-than comparison."""
        return self._compare(Opcode.FCMPLT, lhs, rhs, name)

    # ------------------------------------------------------------------
    # Conversions and moves.
    # ------------------------------------------------------------------
    def convert(self, opcode: Opcode, src, to_type: Type, name=""):
        """Emit an explicit conversion instruction."""
        src_v = self._coerce(src)
        dest = self._temp(to_type, name)
        self._emit(insts.unop(opcode, dest, src_v))
        return dest

    def sext(self, src, to_type: Type = I32, name=""):
        """Sign-extend to ``to_type``."""
        return self.convert(Opcode.SEXT, src, to_type, name)

    def zext(self, src, to_type: Type = I32, name=""):
        """Zero-extend to ``to_type``."""
        return self.convert(Opcode.ZEXT, src, to_type, name)

    def trunc(self, src, to_type: Type, name=""):
        """Truncate to a narrower integer type."""
        return self.convert(Opcode.TRUNC, src, to_type, name)

    def itof(self, src, to_type: Type = F32, name=""):
        """Convert integer to float."""
        return self.convert(Opcode.ITOF, src, to_type, name)

    def ftoi(self, src, to_type: Type = I32, name=""):
        """Convert float to integer (truncating)."""
        return self.convert(Opcode.FTOI, src, to_type, name)

    def mov(self, src, name="", type_: Optional[Type] = None):
        """Copy a value into a fresh register."""
        src_v = self._coerce(src, type_)
        dest = self._temp(type_ or src_v.type, name)
        self._emit(insts.move(dest, src_v))
        return dest

    def mov_to(self, dest: VirtualRegister, src) -> None:
        """Copy a value into an existing register (models a mutable local)."""
        src_v = self._coerce(src, dest.type)
        self._emit(insts.move(dest, src_v))

    def select(self, cond, if_true, if_false, name=""):
        """Conditional move: cond ? if_true : if_false."""
        cond_v = self._coerce(cond)
        t_v = self._coerce(if_true)
        f_v = self._coerce(if_false, t_v.type)
        dest = self._temp(t_v.type, name)
        self._emit(insts.select(dest, cond_v, t_v, f_v))
        return dest

    # ------------------------------------------------------------------
    # Memory.
    # ------------------------------------------------------------------
    def alloca(self, type_: Type, count: int = 1, name=""):
        """Reserve stack storage; returns the address register."""
        dest = self._temp(PointerType(type_), name)
        self._emit(insts.alloca(dest, type_, count))
        return dest

    def load(self, address: Operand, type_: Optional[Type] = None, name=""):
        """Load a value of ``type_`` (or the pointee type) from ``address``."""
        addr_v = self._coerce(address)
        if type_ is None:
            if isinstance(addr_v.type, PointerType) and addr_v.type.pointee is not None:
                type_ = addr_v.type.pointee
            else:
                type_ = I32
        dest = self._temp(type_, name)
        self._emit(insts.load(dest, addr_v))
        return dest

    def store(self, value: Operand, address: Operand) -> None:
        """Store ``value`` to ``address``."""
        value_v = self._coerce(value)
        addr_v = self._coerce(address)
        self._emit(insts.store(value_v, addr_v))

    def gep(self, base: Operand, index: Operand, element_type: Type, name=""):
        """Compute ``base + index * sizeof(element_type)`` (pointer arithmetic)."""
        base_v = self._coerce(base)
        index_v = self._coerce(index)
        scale = element_type.size
        if isinstance(index_v, Constant):
            offset: Value = Constant(index_v.value * scale, I32)
        else:
            offset = self._binary(Opcode.MUL, index_v, Constant(scale, I32), I32)
        dest = self._temp(PointerType(element_type), name)
        self._emit(insts.binop(Opcode.ADD, dest, base_v, self._coerce(offset)))
        return dest

    # ------------------------------------------------------------------
    # Control flow.
    # ------------------------------------------------------------------
    def jump(self, target: BasicBlock) -> None:
        """Unconditional jump to ``target``."""
        self._emit(insts.jump(target))

    def branch(self, cond: Operand, if_true: BasicBlock, if_false: BasicBlock) -> None:
        """Conditional branch."""
        self._emit(insts.branch(self._coerce(cond), if_true, if_false))

    def ret(self, value: Optional[Operand] = None) -> None:
        """Return, optionally with a value."""
        self._emit(insts.ret(self._coerce(value) if value is not None else None))

    def call(self, callee: str, args: Sequence[Operand],
             return_type: Type = VOID, name=""):
        """Call ``callee``; returns the result register or None for void."""
        arg_values = [self._coerce(a) for a in args]
        dest = None if return_type.is_void() else self._temp(return_type, name)
        self._emit(insts.call(dest, callee, arg_values))
        return dest

    def custom(self, name: str, args: Sequence[Operand],
               return_type: Type = I32, result_name=""):
        """Emit an application-specific custom operation."""
        arg_values = [self._coerce(a) for a in args]
        dest = None if return_type.is_void() else self._temp(return_type, result_name)
        self._emit(insts.custom(dest, name, arg_values))
        return dest

    # ------------------------------------------------------------------
    # Constants.
    # ------------------------------------------------------------------
    def const(self, value, type_: Type = I32) -> Constant:
        """Create an integer or float constant."""
        return Constant(value, type_)
