"""Deep-copy utilities for IR modules and functions.

The explorer evaluates dozens of candidate architectures against the same
source program; each evaluation may rewrite the IR (custom-operation
substitution, unrolling).  Cloning keeps those rewrites isolated.
"""

from __future__ import annotations

from typing import Dict

from .block import BasicBlock
from .function import Function
from .instructions import Instruction
from .module import Module
from .values import Argument, Constant, GlobalVariable, UndefValue, Value, VirtualRegister


def clone_module(module: Module) -> Module:
    """Return a structurally identical deep copy of ``module``."""
    new_module = Module(module.name)
    global_map: Dict[int, GlobalVariable] = {}
    for gvar in module.globals.values():
        init = gvar.initializer
        if isinstance(init, list):
            init = list(init)
        new_gvar = new_module.add_global(gvar.name, gvar.value_type, init)
        new_gvar.address = gvar.address
        global_map[id(gvar)] = new_gvar
    for function in module.functions.values():
        new_module.add_function(clone_function(function, global_map))
    return new_module


def clone_function(function: Function,
                   global_map: Dict[int, GlobalVariable] | None = None) -> Function:
    """Return a deep copy of ``function``.

    ``global_map`` maps ``id()`` of original globals to their clones; if a
    referenced global is not in the map the original value object is reused
    (globals are immutable identifiers, so sharing is safe when cloning a
    single function outside a module clone).
    """
    global_map = global_map or {}
    new_function = Function(
        function.name,
        function.return_type,
        list(function.type.param_types),
        [a.name for a in function.arguments],
    )

    value_map: Dict[int, Value] = {}
    for old_arg, new_arg in zip(function.arguments, new_function.arguments):
        value_map[old_arg.id] = new_arg

    block_map: Dict[str, BasicBlock] = {}
    for block in function.blocks:
        new_block = BasicBlock(block.name)
        new_block.frequency = block.frequency
        new_function.add_block(new_block)
        block_map[block.name] = new_block

    def map_value(value: Value) -> Value:
        if isinstance(value, Argument):
            return value_map[value.id]
        if isinstance(value, VirtualRegister):
            mapped = value_map.get(value.id)
            if mapped is None:
                mapped = VirtualRegister(value.type, value.name)
                value_map[value.id] = mapped
            return mapped
        if isinstance(value, GlobalVariable):
            return global_map.get(id(value), value)
        if isinstance(value, (Constant, UndefValue)):
            return value
        return value

    for block in function.blocks:
        new_block = block_map[block.name]
        for inst in block.instructions:
            new_dest = map_value(inst.dest) if inst.dest is not None else None
            new_operands = [map_value(op) for op in inst.operands]
            new_targets = [block_map[t.name] for t in inst.targets]
            new_inst = Instruction(
                inst.opcode,
                new_dest,
                new_operands,
                targets=new_targets,
                callee=inst.callee,
                custom_op=inst.custom_op,
                alloc_type=inst.alloc_type,
            )
            new_inst.annotations = dict(inst.annotations)
            new_block.append(new_inst)

    return new_function
