"""Per-basic-block dataflow graphs (DFGs).

The DFG is the central data structure of the ISA-customization engine
(:mod:`repro.core`): instruction-set-extension candidates are convex
subgraphs of these graphs.  It is also used by the VLIW list scheduler,
which schedules the same graph against the machine's resource tables.

Nodes of the DFG are :class:`Instruction` objects of one basic block.
Edges are:

* true (flow) dependences through virtual registers,
* memory dependences (conservative: every pair of memory operations where
  at least one is a store is ordered, as is every call), and
* anti/output dependences through registers (needed because the IR is not
  in SSA form).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

from .block import BasicBlock
from .instructions import Instruction, Opcode
from .values import Value, VirtualRegister


@dataclass
class DataflowGraph:
    """The dependence graph of one basic block."""

    block: BasicBlock
    graph: nx.DiGraph = field(default_factory=nx.DiGraph)

    @property
    def nodes(self) -> List[Instruction]:
        return list(self.graph.nodes)

    def predecessors(self, inst: Instruction) -> List[Instruction]:
        return list(self.graph.predecessors(inst))

    def successors(self, inst: Instruction) -> List[Instruction]:
        return list(self.graph.successors(inst))

    def flow_edges(self) -> List[tuple]:
        """Only the true (register flow) dependence edges."""
        return [
            (u, v) for u, v, kind in self.graph.edges(data="kind") if kind == "flow"
        ]

    def is_convex(self, subset: Set[Instruction]) -> bool:
        """True if no path leaves ``subset`` and re-enters it.

        Convexity is the feasibility condition for collapsing a subgraph
        into a single custom operation: if a path escapes and returns, the
        fused operation would need its own result before it finished.
        """
        if not subset:
            return True
        outside_reachable: Set[Instruction] = set()
        # For every edge subset -> outside, find what is reachable from the
        # outside node; if any subset node is reachable, the cut is not convex.
        for node in subset:
            for succ in self.graph.successors(node):
                if succ not in subset:
                    outside_reachable.add(succ)
        seen: Set[Instruction] = set()
        stack = list(outside_reachable)
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node in subset:
                return False
            stack.extend(self.graph.successors(node))
        return True

    def subgraph_inputs(self, subset: Set[Instruction]) -> List[Value]:
        """Distinct values consumed by ``subset`` but produced outside it."""
        produced = {inst.dest for inst in subset if inst.dest is not None}
        inputs: List[Value] = []
        seen = set()
        for inst in subset:
            for op in inst.operands:
                if isinstance(op, VirtualRegister) and op in produced:
                    continue
                key = op.id if isinstance(op, VirtualRegister) else (str(op), str(op.type))
                if key not in seen:
                    seen.add(key)
                    inputs.append(op)
        return inputs

    def subgraph_outputs(self, subset: Set[Instruction]) -> List[VirtualRegister]:
        """Registers produced in ``subset`` that are used outside it (or live out)."""
        produced = {inst.dest: inst for inst in subset if inst.dest is not None}
        used_inside: Dict[VirtualRegister, int] = {}
        for inst in subset:
            for op in inst.uses():
                used_inside[op] = used_inside.get(op, 0) + 1

        outputs: List[VirtualRegister] = []
        live_out = self._live_out_registers()
        for reg, inst in produced.items():
            external_use = False
            for other in self.block.instructions:
                if other in subset:
                    continue
                if reg in other.uses():
                    external_use = True
                    break
            if external_use or reg in live_out:
                outputs.append(reg)
        return outputs

    def _live_out_registers(self) -> Set[VirtualRegister]:
        """Registers defined in this block and possibly read by other blocks."""
        defined = {
            inst.dest for inst in self.block.instructions if inst.dest is not None
        }
        function = self.block.function
        if function is None:
            return set()
        live: Set[VirtualRegister] = set()
        for block in function.blocks:
            if block is self.block:
                continue
            for inst in block.instructions:
                for reg in inst.uses():
                    if reg in defined:
                        live.add(reg)
        # A register used by this block's own terminator also counts.
        term = self.block.terminator
        if term is not None:
            for reg in term.uses():
                if reg in defined:
                    live.add(reg)
        return live

    def critical_path_length(self, latency_of) -> int:
        """Length (in cycles) of the longest dependence chain.

        ``latency_of`` maps an :class:`Instruction` to its latency in cycles.
        """
        order = list(nx.topological_sort(self.graph))
        finish: Dict[Instruction, int] = {}
        longest = 0
        for inst in order:
            start = 0
            for pred in self.graph.predecessors(inst):
                start = max(start, finish[pred])
            finish[inst] = start + latency_of(inst)
            longest = max(longest, finish[inst])
        return longest


def build_dataflow_graph(block: BasicBlock,
                         include_terminator: bool = False) -> DataflowGraph:
    """Construct the dependence graph of ``block``.

    ``include_terminator`` controls whether the block terminator appears in
    the graph (the scheduler wants it; the ISE enumerator does not).
    """
    dfg = DataflowGraph(block)
    graph = dfg.graph

    instructions = (
        list(block.instructions) if include_terminator
        else block.non_terminator_instructions()
    )

    last_def: Dict[int, Instruction] = {}
    uses_since_def: Dict[int, List[Instruction]] = {}
    last_store: Optional[Instruction] = None
    loads_since_store: List[Instruction] = []
    last_barrier: Optional[Instruction] = None

    for inst in instructions:
        graph.add_node(inst)

        # True dependences (register flow).
        for reg in inst.uses():
            producer = last_def.get(reg.id)
            if producer is not None and producer is not inst:
                graph.add_edge(producer, inst, kind="flow", reg=reg)
            uses_since_def.setdefault(reg.id, []).append(inst)

        # Anti dependences (write-after-read) and output dependences
        # (write-after-write) — required because the IR is not SSA.
        if inst.dest is not None:
            reg_id = inst.dest.id
            for reader in uses_since_def.get(reg_id, []):
                if reader is not inst and not graph.has_edge(reader, inst):
                    graph.add_edge(reader, inst, kind="anti")
            prev = last_def.get(reg_id)
            if prev is not None and prev is not inst and not graph.has_edge(prev, inst):
                graph.add_edge(prev, inst, kind="output")
            last_def[reg_id] = inst
            uses_since_def[reg_id] = []

        # Memory dependences: conservative store ordering.
        if inst.opcode is Opcode.LOAD:
            if last_store is not None:
                graph.add_edge(last_store, inst, kind="memory")
            loads_since_store.append(inst)
        elif inst.opcode is Opcode.STORE:
            if last_store is not None:
                graph.add_edge(last_store, inst, kind="memory")
            for load_inst in loads_since_store:
                graph.add_edge(load_inst, inst, kind="memory")
            last_store = inst
            loads_since_store = []

        # Calls are full barriers (memory + ordering).
        if inst.opcode is Opcode.CALL:
            if last_barrier is not None:
                graph.add_edge(last_barrier, inst, kind="barrier")
            if last_store is not None:
                graph.add_edge(last_store, inst, kind="memory")
            for load_inst in loads_since_store:
                graph.add_edge(load_inst, inst, kind="memory")
            last_store = inst
            loads_since_store = []
            last_barrier = inst

        # The terminator depends on everything with a side effect so it
        # schedules last.
        if inst.is_terminator():
            for other in instructions:
                if other is inst:
                    continue
                if other.has_side_effects() or other.opcode in (Opcode.CALL, Opcode.STORE):
                    if not graph.has_edge(other, inst):
                        graph.add_edge(other, inst, kind="order")

    return dfg
