"""The single registry of execution-engine names.

Engine strings appear at several API surfaces (``Toolchain(engine=...)``,
``Evaluator(engine=...)``, ``run_kernel(engine=...)``); each used to
validate them against its own private tuple.  This module is the one
authoritative list, grouped by *kind*:

* ``"functional"`` — engines that execute IR for values and profiles:
  the reference ``"interpreter"``, the threaded-code ``"compiled"`` and
  the generated-C ``"native"`` (which degrades to ``"compiled"`` with a
  warning when no C compiler is available);
* ``"evaluation"`` — measurement engines of :class:`repro.dse.Evaluator`:
  ``"cycle"`` (cycle-accurate) plus ``"compiled"``/``"native"``
  (functional execution with statically reduced timing);
* ``"fidelity"`` — timing-model fidelity levels: ``"cycle"`` (simulate
  every design point) and ``"trace"`` (profile once, retime
  analytically per point via :mod:`repro.model`).

Kept import-light on purpose so every layer (toolchain, dse, workloads)
can import it without cycles.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: functional-execution engines (value/profile producers).
FUNCTIONAL_ENGINES: Tuple[str, ...] = ("interpreter", "compiled", "native")

#: Evaluator measurement engines.
EVALUATION_ENGINES: Tuple[str, ...] = ("cycle", "compiled", "native")

#: timing-model fidelity levels (simulate vs. analytic retiming).
FIDELITY_LEVELS: Tuple[str, ...] = ("cycle", "trace")

ENGINE_KINDS: Dict[str, Tuple[str, ...]] = {
    "functional": FUNCTIONAL_ENGINES,
    "evaluation": EVALUATION_ENGINES,
    "fidelity": FIDELITY_LEVELS,
}


def validate_engine(engine: str, kind: str = "functional") -> str:
    """Return ``engine`` if it names an engine of ``kind``; raise otherwise."""
    try:
        options = ENGINE_KINDS[kind]
    except KeyError:
        raise KeyError(
            f"unknown engine kind '{kind}'; kinds: "
            f"{', '.join(sorted(ENGINE_KINDS))}") from None
    if engine not in options:
        raise ValueError(
            f"unknown engine '{engine}'; options: {', '.join(options)}")
    return engine
