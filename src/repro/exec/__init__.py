"""Compiled execution: threaded-code translation, code caching, batching.

This package is the performance tier of the simulation stack:

* :mod:`repro.exec.translator` — pre-translates IR basic blocks into
  specialized Python closures (threaded code);
* :mod:`repro.exec.engine` — :class:`CompiledSimulator`, a drop-in for
  :class:`repro.sim.FunctionalSimulator` with identical results/profiles;
* :mod:`repro.exec.cache` — a content-addressed code cache so structurally
  identical modules are translated once;
* :mod:`repro.exec.batch` — :class:`BatchEvaluator`, parallel and
  persistently cached design-point evaluation for the explorer;
* :mod:`repro.exec.registry` — the single registry of engine names used
  by every ``engine=`` parameter across the stack.

Engine selection: everything that runs functional simulation accepts an
``engine`` argument, either ``"interpreter"`` (reference oracle) or
``"compiled"`` (this package); see :func:`make_functional_simulator` and
:func:`validate_engine`.
"""

from .registry import (
    ENGINE_KINDS, EVALUATION_ENGINES, FIDELITY_LEVELS, FUNCTIONAL_ENGINES,
    validate_engine,
)
from .batch import BatchEvaluator, BatchStats, EvaluatorSpec
from .cache import (
    CodeCache, CodeCacheStats, global_code_cache, module_fingerprint,
    reset_global_code_cache,
)
from .engine import CompiledSimulator, make_functional_simulator
from .translator import TranslatedProgram, translate_module

__all__ = [
    "ENGINE_KINDS", "EVALUATION_ENGINES", "FIDELITY_LEVELS",
    "FUNCTIONAL_ENGINES",
    "validate_engine",
    "BatchEvaluator", "BatchStats", "EvaluatorSpec",
    "CodeCache", "CodeCacheStats", "global_code_cache",
    "module_fingerprint", "reset_global_code_cache",
    "CompiledSimulator", "make_functional_simulator",
    "TranslatedProgram", "translate_module",
]
