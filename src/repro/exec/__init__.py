"""Compiled execution: threaded code, generated C, batching, caching.

This package is the performance tier of the simulation stack:

* :mod:`repro.exec.translator` — pre-translates IR basic blocks into
  specialized Python closures (threaded code);
* :mod:`repro.exec.engine` — :class:`CompiledSimulator`, a drop-in for
  :class:`repro.sim.FunctionalSimulator` with identical results/profiles;
* :mod:`repro.exec.native` — :class:`NativeSimulator`, the generated-C
  JIT tier: modules rendered to C, compiled on the fly and driven via
  ctypes, with ``.so`` artifacts shared through the artifact store;
* :mod:`repro.exec.vector` — :class:`VectorizedSimulator`, a
  NumPy-lockstep batch interpreter, plus :func:`run_batch`, the
  native → vector → compiled cascade for many-argument-set workloads;
* :mod:`repro.exec.cache` — a content-addressed code cache so structurally
  identical modules are translated once;
* :mod:`repro.exec.batch` — :class:`BatchEvaluator`, parallel and
  persistently cached design-point evaluation for the explorer;
* :mod:`repro.exec.registry` — the single registry of engine names used
  by every ``engine=`` parameter across the stack.

Engine selection: everything that runs functional simulation accepts an
``engine`` argument — ``"interpreter"`` (reference oracle), ``"compiled"``
(threaded code) or ``"native"`` (generated C, degrading to compiled with
one warning when no C compiler exists); see
:func:`make_functional_simulator` and :func:`validate_engine`.
"""

from .registry import (
    ENGINE_KINDS, EVALUATION_ENGINES, FIDELITY_LEVELS, FUNCTIONAL_ENGINES,
    validate_engine,
)
from .batch import BatchEvaluator, BatchStats, EvaluatorSpec
from .cache import (
    CODE_STAGE, CodeCache, CodeCacheStats, global_code_cache,
    module_fingerprint, reset_global_code_cache,
)
from .engine import (
    CompiledSimulator, make_functional_simulator,
    reset_native_fallback_warning,
)
from .native import (
    NATIVE_STAGE, NativeCacheStats, NativeCodeCache, NativeCompileError,
    NativeProgram, NativeSimulator, NativeToolchain, NativeUnavailableError,
    global_native_cache, global_native_toolchain, native_available,
    reset_global_native_cache, reset_native_toolchain,
)
from .translator import TranslatedProgram, translate_module
from .vector import (
    BatchResult, VectorizedSimulator, numpy_available, run_batch,
)

__all__ = [
    "ENGINE_KINDS", "EVALUATION_ENGINES", "FIDELITY_LEVELS",
    "FUNCTIONAL_ENGINES",
    "validate_engine",
    "BatchEvaluator", "BatchStats", "EvaluatorSpec",
    "CODE_STAGE", "CodeCache", "CodeCacheStats", "global_code_cache",
    "module_fingerprint", "reset_global_code_cache",
    "CompiledSimulator", "make_functional_simulator",
    "reset_native_fallback_warning",
    "NATIVE_STAGE", "NativeCacheStats", "NativeCodeCache",
    "NativeCompileError", "NativeProgram", "NativeSimulator",
    "NativeToolchain", "NativeUnavailableError",
    "global_native_cache", "global_native_toolchain", "native_available",
    "reset_global_native_cache", "reset_native_toolchain",
    "TranslatedProgram", "translate_module",
    "BatchResult", "VectorizedSimulator", "numpy_available", "run_batch",
]
