"""Native execution engine: generated C compiled on the fly via ctypes.

The third functional engine (``engine="native"``).  Each module is
rendered to C by :mod:`repro.exec.nativegen`, compiled into a shared
object by a codepy-style :class:`NativeToolchain` (compiler probed once,
cache keys derived from the compiler ABI and the module's structural
fingerprint), loaded with :mod:`ctypes`, and driven by
:class:`NativeSimulator` — a drop-in for :class:`CompiledSimulator` that
produces bit-identical return values, memory write-backs and execution
profiles on successful runs.

Build artifacts flow through the content-addressed
:class:`~repro.pipeline.ArtifactStore` under the persisted ``"native"``
stage, so a service's shared :class:`DiskArtifactStore` lets every worker
reuse one compile.  Failures are *quarantined* by cache key: a module
whose render or compile fails once is never retried in this process, and
a stored ``.so`` that fails to load is recompiled from source exactly
once (replacing the bad artifact) before the key is quarantined.

When no C compiler is available — or a module is unsupported —
:func:`repro.exec.make_functional_simulator` falls back to the
threaded-code engine with a single process-wide :class:`RuntimeWarning`.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import sys
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir import Module
from ..pipeline.fingerprints import NATIVE_SCHEMA, native_fingerprint
from ..sim.functional import SimulationError
from ..sim.memory import MemoryError_
from .cache import CodeCache, module_fingerprint
from .engine import CompiledSimulator
from .nativegen import (
    RENDER_SCHEMA, RenderedProgram, TRAP_BAD_CALL, TRAP_CUSTOM, TRAP_DIV0,
    TRAP_FDIV0, TRAP_FELL_OFF, TRAP_OOB, TRAP_OOM, TRAP_REM0, TRAP_STEPS,
    UnsupportedNativeModule, render_c_program,
)

#: artifact-store stage name under which shared objects are persisted.
NATIVE_STAGE = "native"

#: environment override for the compiler ("none"/"off"/"0"/"disabled"
#: force the no-compiler fallback path; anything else is the command).
CC_ENV = "REPRO_NATIVE_CC"

_CC_DISABLED = {"", "none", "off", "0", "disabled"}

_BASE_FLAGS = ("-O2", "-fPIC", "-shared", "-fwrapv", "-fno-strict-aliasing")


class NativeCompileError(Exception):
    """The C compiler rejected generated source (or died)."""


class NativeUnavailableError(Exception):
    """Native execution cannot serve this module; fall back to compiled."""


# ----------------------------------------------------------------------
# ctypes ABI mirrored from nativegen's _PRELUDE.
# ----------------------------------------------------------------------

CUSTOM_CB = ctypes.CFUNCTYPE(
    ctypes.c_int32, ctypes.c_void_p, ctypes.c_int32,
    ctypes.POINTER(ctypes.c_int64), ctypes.c_int32,
    ctypes.POINTER(ctypes.c_int64))


class _Ctx(ctypes.Structure):
    _fields_ = [
        ("mem", ctypes.POINTER(ctypes.c_uint8)),
        ("mem_size", ctypes.c_int64),
        ("next_free", ctypes.c_int64),
        ("steps", ctypes.c_int64),
        ("max_steps", ctypes.c_int64),
        ("taken", ctypes.c_int64),
        ("visits", ctypes.POINTER(ctypes.c_int64)),
        ("fault_a", ctypes.c_int64),
        ("fault_b", ctypes.c_int64),
        ("status", ctypes.c_int32),
        ("ret_flag", ctypes.c_int32),
        ("custom", CUSTOM_CB),
        ("custom_handle", ctypes.c_void_p),
    ]


# ----------------------------------------------------------------------
# Toolchain.
# ----------------------------------------------------------------------

class NativeToolchain:
    """Probes for a C compiler and builds shared objects from source.

    codepy-style contract: :meth:`get_version` identifies the compiler,
    :meth:`abi_id` is a stable digest of everything that affects binary
    compatibility (compiler, version, flags, platform, renderer schema),
    and :meth:`compile` turns C source into ``.so`` bytes, raising
    :class:`NativeCompileError` on failure.
    """

    def __init__(self, cc: Optional[str] = None,
                 flags: Tuple[str, ...] = _BASE_FLAGS) -> None:
        self.flags = tuple(flags)
        self.cc: Optional[str] = None
        self._version: Optional[str] = None
        if cc is None:
            cc = os.environ.get(CC_ENV)
        if cc is not None and cc.strip().lower() in _CC_DISABLED:
            return  # explicitly disabled: stay unavailable
        candidates = [cc] if cc else ["cc", "gcc", "clang"]
        for candidate in candidates:
            resolved = shutil.which(candidate)
            if resolved is None:
                continue
            version = self._probe(resolved)
            if version is not None:
                self.cc = resolved
                self._version = version
                break

    @staticmethod
    def _probe(cc: str) -> Optional[str]:
        try:
            proc = subprocess.run([cc, "--version"], capture_output=True,
                                  text=True, timeout=10)
        except (OSError, subprocess.SubprocessError):
            return None
        if proc.returncode != 0 or not proc.stdout:
            return None
        return proc.stdout.splitlines()[0].strip()

    @property
    def available(self) -> bool:
        return self.cc is not None

    def get_version(self) -> str:
        """First line of ``cc --version`` (raises if unavailable)."""
        if self._version is None:
            raise NativeCompileError("no C compiler available")
        return self._version

    def abi_id(self) -> str:
        """Stable digest of everything affecting binary compatibility."""
        import hashlib

        parts = (self.cc or "none", self._version or "none",
                 " ".join(self.flags), sys.platform,
                 f"py{sys.version_info[0]}.{sys.version_info[1]}",
                 f"render{RENDER_SCHEMA}", f"native{NATIVE_SCHEMA}")
        return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()[:16]

    def compile(self, source: str) -> bytes:
        """Compile C ``source`` to shared-object bytes."""
        if not self.available:
            raise NativeCompileError("no C compiler available")
        with tempfile.TemporaryDirectory(prefix="repro-native-") as tmp:
            src = os.path.join(tmp, "module.c")
            out = os.path.join(tmp, "module.so")
            with open(src, "w") as handle:
                handle.write(source)
            cmd = [self.cc, *self.flags, "-o", out, src]
            try:
                proc = subprocess.run(cmd, capture_output=True, text=True,
                                      timeout=120)
            except (OSError, subprocess.SubprocessError) as exc:
                raise NativeCompileError(f"compiler invocation failed: {exc}")
            if proc.returncode != 0:
                raise NativeCompileError(
                    f"cc exited {proc.returncode}:\n{proc.stderr[-2000:]}")
            with open(out, "rb") as handle:
                return handle.read()


_TOOLCHAIN: Optional[NativeToolchain] = None
_TOOLCHAIN_LOCK = threading.Lock()


def global_native_toolchain() -> NativeToolchain:
    """The process-wide toolchain (probed on first use / at engine import)."""
    global _TOOLCHAIN
    with _TOOLCHAIN_LOCK:
        if _TOOLCHAIN is None:
            _TOOLCHAIN = NativeToolchain()
        return _TOOLCHAIN


def reset_native_toolchain() -> None:
    """Drop the probed toolchain so the next use re-probes (tests)."""
    global _TOOLCHAIN
    with _TOOLCHAIN_LOCK:
        _TOOLCHAIN = None


def native_available() -> bool:
    """True when a working C compiler was found."""
    return global_native_toolchain().available


# ----------------------------------------------------------------------
# Compiled-library cache.
# ----------------------------------------------------------------------

@dataclass
class NativeCacheStats:
    """Counters of one :class:`NativeCodeCache`."""

    hits: int = 0
    misses: int = 0
    builds: int = 0
    store_hits: int = 0
    compile_errors: int = 0
    unsupported: int = 0
    quarantined: int = 0
    evictions: int = 0
    unloads: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "builds": self.builds, "store_hits": self.store_hits,
                "compile_errors": self.compile_errors,
                "unsupported": self.unsupported,
                "quarantined": self.quarantined,
                "evictions": self.evictions, "unloads": self.unloads}


class NativeProgram:
    """One loaded shared object plus its render metadata."""

    __slots__ = ("key", "path", "lib", "rendered", "_runners")

    def __init__(self, key: str, path: str, lib: ctypes.CDLL,
                 rendered: RenderedProgram) -> None:
        self.key = key
        self.path = path
        self.lib = lib
        self.rendered = rendered
        self._runners: Dict[int, object] = {}

    def runner(self, index: int):
        """The ``repro_run_<index>`` entry point, argtypes configured."""
        runner = self._runners.get(index)
        if runner is None:
            runner = getattr(self.lib, f"repro_run_{index}")
            runner.restype = ctypes.c_int64
            runner.argtypes = [ctypes.POINTER(_Ctx),
                               ctypes.POINTER(ctypes.c_int64),
                               ctypes.POINTER(ctypes.c_double),
                               ctypes.POINTER(ctypes.c_double)]
            self._runners[index] = runner
        return runner


def _dlclose(lib: ctypes.CDLL) -> None:
    import _ctypes

    try:
        _ctypes.dlclose(lib._handle)
    except OSError:  # pragma: no cover - platform quirk, never fatal
        pass


class NativeCodeCache:
    """LRU of loaded native programs, with store-backed ``.so`` sharing.

    Keys are :func:`~repro.pipeline.fingerprints.native_fingerprint`
    digests (module structure × toolchain ABI).  Keys whose render,
    compile or load failed are *quarantined*: subsequent requests return
    ``None`` immediately (the engine falls back to threaded code) and the
    bad artifact is never re-loaded.

    ``clear()`` / eviction ``dlclose`` the shared objects; callers must
    not clear while :class:`NativeSimulator` instances built from the
    evicted programs are still in use (same caveat as
    :func:`repro.exec.reset_global_code_cache`).
    """

    def __init__(self, capacity: Optional[int] = 64,
                 toolchain: Optional[NativeToolchain] = None,
                 lib_dir: Optional[str] = None) -> None:
        self.capacity = capacity
        self._toolchain = toolchain
        self.stats = NativeCacheStats()
        self.last_record = None  # StageRecord of the latest store round-trip
        self._entries: "OrderedDict[str, NativeProgram]" = OrderedDict()
        self._quarantine: Dict[str, str] = {}
        self._lib_dir = lib_dir
        self._lock = threading.RLock()

    @property
    def toolchain(self) -> NativeToolchain:
        return (self._toolchain if self._toolchain is not None
                else global_native_toolchain())

    @property
    def lib_dir(self) -> str:
        if self._lib_dir is None:
            self._lib_dir = tempfile.mkdtemp(prefix="repro-native-libs-")
        return self._lib_dir

    # ------------------------------------------------------------------
    def key_for(self, module: Module) -> str:
        return native_fingerprint(module_fingerprint(module),
                                  self.toolchain.abi_id())

    def quarantine_reason(self, key: str) -> Optional[str]:
        return self._quarantine.get(key)

    def _quarantine_key(self, key: str, reason: str) -> None:
        self._quarantine[key] = reason
        self.stats.quarantined += 1

    # ------------------------------------------------------------------
    def get_or_compile(self, module: Module,
                       store=None) -> Optional[NativeProgram]:
        """The loaded native program for ``module``, or ``None``.

        ``None`` means "use the fallback": no compiler, unsupported
        module, or a quarantined key.  ``store`` (any
        :class:`SupportsArtifactStore`) shares ``.so`` bytes across
        processes under the persisted ``"native"`` stage.
        """
        if not self.toolchain.available:
            return None
        with self._lock:
            self.last_record = None
            key = self.key_for(module)
            if key in self._quarantine:
                return None
            program = self._entries.get(key)
            if program is not None:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return program
            self.stats.misses += 1

            try:
                rendered = render_c_program(module)
            except UnsupportedNativeModule as exc:
                self.stats.unsupported += 1
                self._quarantine_key(key, f"unsupported: {exc}")
                return None

            try:
                so_bytes, from_store = self._obtain_bytes(
                    module, rendered, key, store)
            except NativeCompileError as exc:
                self.stats.compile_errors += 1
                self._quarantine_key(key, f"compile error: {exc}")
                return None

            program = self._load(key, rendered, so_bytes, from_store,
                                 store)
            if program is None:
                return None
            self._entries[key] = program
            if (self.capacity is not None
                    and len(self._entries) > self.capacity):
                _evicted_key, evicted = self._entries.popitem(last=False)
                _dlclose(evicted.lib)
                self.stats.evictions += 1
                self.stats.unloads += 1
            return program

    def _obtain_bytes(self, module: Module, rendered: RenderedProgram,
                      key: str, store) -> Tuple[bytes, bool]:
        """(so_bytes, came_from_store) — compiling through the store stage."""
        if store is not None:
            from ..pipeline.compile import NativeStage

            stage = NativeStage(toolchain=self.toolchain,
                                rendered=rendered, key=key)
            payload, record = stage.run(store, module)
            self.last_record = record
            if record.hit:
                self.stats.store_hits += 1
            else:
                self.stats.builds += 1
            return payload, record.hit
        self.stats.builds += 1
        from ..obs import global_tracer

        with global_tracer().span("engine.compile", key=key[:16]):
            return self.toolchain.compile(rendered.source), False

    def _load(self, key: str, rendered: RenderedProgram, so_bytes: bytes,
              from_store: bool, store) -> Optional[NativeProgram]:
        path = os.path.join(self.lib_dir, f"{key}.so")
        try:
            lib = self._materialize(path, so_bytes)
        except OSError as exc:
            if from_store:
                # A corrupt stored artifact: rebuild from source exactly
                # once, replacing the bad store entry, then give up.
                try:
                    so_bytes = self.toolchain.compile(rendered.source)
                    self.stats.builds += 1
                    if store is not None:
                        store.put(NATIVE_STAGE, key, so_bytes, persist=True)
                    lib = self._materialize(path, so_bytes)
                except (NativeCompileError, OSError) as exc2:
                    self._quarantine_key(key, f"load failed: {exc2}")
                    return None
            else:
                self._quarantine_key(key, f"load failed: {exc}")
                return None
        return NativeProgram(key, path, lib, rendered)

    @staticmethod
    def _materialize(path: str, so_bytes: bytes) -> ctypes.CDLL:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(so_bytes)
        os.replace(tmp, path)
        return ctypes.CDLL(path)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self, forget_quarantine: bool = False) -> None:
        """Unload every library (see the class docstring's caveat)."""
        with self._lock:
            for program in self._entries.values():
                _dlclose(program.lib)
                self.stats.unloads += 1
            self._entries.clear()
            if forget_quarantine:
                self._quarantine.clear()


_GLOBAL_NATIVE_CACHE = NativeCodeCache()


def global_native_cache() -> NativeCodeCache:
    """The process-wide native code cache."""
    return _GLOBAL_NATIVE_CACHE


def reset_global_native_cache() -> None:
    """Unload and forget every native program (tests and benchmarks)."""
    _GLOBAL_NATIVE_CACHE.clear(forget_quarantine=True)
    _GLOBAL_NATIVE_CACHE.stats = NativeCacheStats()


# ----------------------------------------------------------------------
# The simulator.
# ----------------------------------------------------------------------

_U64_MASK = (1 << 64) - 1


def _to_i64(value: int) -> int:
    """Two's-complement int64 view of an arbitrary Python int."""
    value &= _U64_MASK
    return value - (1 << 64) if value >= (1 << 63) else value


class NativeSimulator(CompiledSimulator):
    """Drop-in :class:`CompiledSimulator` that runs generated C.

    Inherits the argument lowering, memory image, and profile-flush
    machinery; only the execution core (:meth:`_call`) changes — one
    ctypes call into ``repro_run_<fn>`` replaces the threaded-code loop,
    after which visit counters, the allocator cursor, steps and taken
    branches are synced back so profiles stay bit-identical.

    Raises :class:`NativeUnavailableError` from the constructor when no
    native program can be produced (no compiler, unsupported module,
    quarantined key); :func:`make_functional_simulator` turns that into
    the documented fallback.
    """

    def __init__(self, module: Module, memory_size: int = 1 << 20,
                 max_steps: int = 50_000_000,
                 cache: Optional[CodeCache] = None,
                 native_cache: Optional[NativeCodeCache] = None,
                 store=None,
                 program: Optional[NativeProgram] = None) -> None:
        super().__init__(module, memory_size=memory_size,
                         max_steps=max_steps, cache=cache)
        self.native_cache = (native_cache if native_cache is not None
                             else global_native_cache())
        if program is None:
            if not self.native_cache.toolchain.available:
                raise NativeUnavailableError("no C compiler found")
            program = self.native_cache.get_or_compile(module, store=store)
            if program is None:
                reason = self.native_cache.quarantine_reason(
                    self.native_cache.key_for(module))
                raise NativeUnavailableError(
                    reason or "module not available natively")
        self.native = program
        self._custom_error: Optional[BaseException] = None
        self._pattern_cache: Dict[str, object] = {}
        self._custom_cb = (self._make_custom_cb()
                           if program.rendered.custom_ops else None)
        # Sanity: the renderer and the translator must agree on layout.
        for name, translated in self.program.functions.items():
            meta = program.rendered.functions.get(name)
            if meta is None or meta.n_blocks != len(translated.blocks):
                raise NativeUnavailableError(
                    f"native/translated layout mismatch in {name}")

    # ------------------------------------------------------------------
    def _make_custom_cb(self):
        names = self.native.rendered.custom_ops
        patterns = self._pattern_cache

        def callback(handle, op_index, inputs, n, out):
            try:
                name = names[op_index]
                # Late binding with first-resolution caching, matching the
                # translator's lazy custom-op policy.
                pattern = patterns.get(name)
                if pattern is None:
                    from ..core.library import global_extension_library

                    pattern = global_extension_library().lookup(name)
                    if pattern is None:
                        raise SimulationError(
                            f"custom op {name} has no registered semantics")
                    patterns[name] = pattern
                values = [inputs[i] for i in range(n)]
                try:
                    result = pattern.evaluate(values)
                except KeyError as exc:
                    raise SimulationError(
                        f"custom op {name} raised KeyError: {exc}") from exc
                out[0] = _to_i64(int(result))
                return 0
            except BaseException as exc:  # noqa: BLE001 - must not cross C
                self._custom_error = exc
                return 1

        return CUSTOM_CB(callback)

    # ------------------------------------------------------------------
    def _call(self, function, args):
        rendered = self.native.rendered
        meta = rendered.functions[function.name]
        n = len(args)
        iargs = (ctypes.c_int64 * max(1, n))()
        fargs = (ctypes.c_double * max(1, n))()
        for j, (klass, value) in enumerate(zip(meta.arg_classes, args)):
            if klass == "f":
                fargs[j] = float(value)
            else:
                iargs[j] = _to_i64(int(value))

        visits = (ctypes.c_int64 * max(1, rendered.total_blocks))()
        membuf = (ctypes.c_uint8 * self.memory.size).from_buffer(
            self.memory.data)
        ctx = _Ctx()
        ctx.mem = ctypes.cast(membuf, ctypes.POINTER(ctypes.c_uint8))
        ctx.mem_size = self.memory.size
        ctx.next_free = self.memory._next_free
        ctx.steps = self._steps
        ctx.max_steps = self.max_steps
        ctx.taken = 0
        ctx.visits = ctypes.cast(visits, ctypes.POINTER(ctypes.c_int64))
        ctx.fault_a = 0
        ctx.fault_b = 0
        ctx.status = 0
        ctx.ret_flag = 0
        if self._custom_cb is not None:
            ctx.custom = self._custom_cb
        ctx.custom_handle = None
        self._custom_error = None

        runner = self.native.runner(meta.index)
        fret = ctypes.c_double(0.0)
        try:
            rv = runner(ctypes.byref(ctx), iargs, fargs, ctypes.byref(fret))
        finally:
            # Release the buffer export before anything can resize/replace
            # the backing bytearray.
            ctx.mem = ctypes.POINTER(ctypes.c_uint8)()
            del membuf
            self.memory._next_free = ctx.next_free
            self._steps = ctx.steps
            self.profile.taken_branches += ctx.taken
            self._flush_all(visits)

        if ctx.status != 0:
            self._raise_trap(ctx)
        if ctx.ret_flag == 0:
            return None
        return fret.value if meta.return_class == "f" else int(rv)

    def _flush_all(self, visits) -> None:
        """Fold the flat C visit counters through the translator deltas."""
        rendered = self.native.rendered
        for name, translated in self.program.functions.items():
            meta = rendered.functions[name]
            counts = visits[meta.block_base:meta.block_base + meta.n_blocks]
            if any(counts):
                self._flush(translated, counts)

    def _raise_trap(self, ctx: _Ctx) -> None:
        status = ctx.status
        if status == TRAP_STEPS:
            raise SimulationError("maximum step count exceeded")
        if status == TRAP_DIV0:
            raise SimulationError("integer division by zero")
        if status == TRAP_REM0:
            raise SimulationError("integer remainder by zero")
        if status == TRAP_FDIV0:
            raise SimulationError("floating division by zero")
        if status == TRAP_OOB:
            raise MemoryError_(
                f"access of {ctx.fault_a} bytes at {ctx.fault_b} "
                "is out of range")
        if status == TRAP_OOM:
            raise MemoryError_(
                f"out of simulated memory: need {ctx.fault_a} bytes "
                f"at {ctx.fault_b}")
        if status == TRAP_FELL_OFF:
            fn, block = self.native.rendered.flat_blocks[ctx.fault_a]
            raise SimulationError(
                f"fell off the end of block {block} in {fn}")
        if status == TRAP_BAD_CALL:
            name = self.native.rendered.bad_calls[ctx.fault_a]
            raise SimulationError(
                f"no function named {name} in module {self.module.name}")
        if status == TRAP_CUSTOM:
            if self._custom_error is not None:
                error = self._custom_error
                self._custom_error = None
                raise error
            raise SimulationError("custom op failed in native code")
        raise SimulationError(f"native engine trap {status}")
