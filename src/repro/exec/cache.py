"""Content-addressed code cache for translated modules.

Design-space exploration re-compiles and re-simulates structurally
identical IR over and over (every candidate machine starts from a clone of
the same optimized kernel module).  Fingerprinting the module *structure*
— rather than keying on object identity — lets every clone share one
threaded-code translation: the second and later evaluations of an
identical module skip translation entirely.

The fingerprint is a SHA-256 over a canonical rendering of the module:
functions, blocks and instructions in order, with virtual-register ids
normalized to per-function sequence numbers (clones allocate fresh global
ids, so raw ids would never match).  CUSTOM operations additionally hash
the *signature* of the pattern currently bound to their name, so the same
IR under different registered semantics maps to different cache entries.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..ir import (
    Argument, Constant, GlobalVariable, Module, Opcode, UndefValue,
    VirtualRegister,
)
from .translator import TranslatedProgram, translate_module


def module_fingerprint(module: Module, library=None) -> str:
    """A structural content hash of ``module``.

    Two modules have equal fingerprints iff they are clones of each other
    (same functions, blocks, instructions, operands, globals) with the same
    custom-op semantics visible in ``library`` (the process-wide extension
    library by default).
    """
    if library is None:
        from ..core.library import global_extension_library

        library = global_extension_library()

    parts = []

    for name, gvar in module.globals.items():
        init = gvar.initializer
        if isinstance(init, (list, tuple)):
            init_text = ",".join(str(v) for v in init)
        else:
            init_text = str(init)
        parts.append(f"g {name} {gvar.value_type} [{init_text}]")

    for function in module.functions.values():
        normalized: Dict[int, int] = {}

        def norm(register) -> int:
            # Per-function sequence number, assigned on first encounter.
            return normalized.setdefault(register.id, len(normalized))

        params = ",".join(str(a.type) for a in function.arguments)
        for argument in function.arguments:
            norm(argument)
        parts.append(f"f {function.name} {function.return_type} ({params})")

        for block in function.blocks:
            parts.append(f"b {block.name}")
            for inst in block.instructions:
                tokens = [inst.opcode.value]
                if inst.dest is not None:
                    tokens.append(f"d{norm(inst.dest)}:{inst.dest.type}")
                for operand in inst.operands:
                    if isinstance(operand, Constant):
                        tokens.append(f"c{operand.value!r}:{operand.type}")
                    elif isinstance(operand, GlobalVariable):
                        tokens.append(f"g{operand.name}")
                    elif isinstance(operand, UndefValue):
                        tokens.append("u")
                    elif isinstance(operand, (VirtualRegister, Argument)):
                        tokens.append(f"r{norm(operand)}")
                    else:  # pragma: no cover - defensive
                        tokens.append(repr(operand))
                if inst.targets:
                    tokens.append("->" + ",".join(t.name for t in inst.targets))
                if inst.callee:
                    tokens.append(f"@{inst.callee}")
                if inst.custom_op:
                    pattern = library.lookup(inst.custom_op)
                    signature = pattern.signature() if pattern is not None else "?"
                    tokens.append(f"x{inst.custom_op}={signature}")
                if inst.alloc_type is not None:
                    tokens.append(f"a{inst.alloc_type}")
                parts.append(" ".join(tokens))

    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()


@dataclass
class CodeCacheStats:
    """Hit/miss counters of one :class:`CodeCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return 0.0 if self.lookups == 0 else self.hits / self.lookups

    def as_dict(self) -> Dict[str, object]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4)}


#: artifact-store stage name under which a bound CodeCache mirrors its
#: counters (so ``pipeline.stats()`` shows threaded-code cache pressure
#: next to the staged-compilation stages).
CODE_STAGE = "exec.code"


class CodeCache:
    """An LRU cache mapping module fingerprints to translated programs.

    When bound to an artifact store (``store=`` or :meth:`bind_store`),
    evictions are additionally counted on the owning store's
    ``exec.code`` stage stats — parity with the disk store's
    ``disk_evictions`` — so capacity pressure is visible in the same
    per-stage tables the pipeline and the service report.
    """

    def __init__(self, capacity: Optional[int] = 256, store=None) -> None:
        self.capacity = capacity
        self.stats = CodeCacheStats()
        self.store = store
        self._entries: "OrderedDict[str, TranslatedProgram]" = OrderedDict()
        self._lock = threading.Lock()

    def bind_store(self, store) -> None:
        """Mirror future eviction counts onto ``store``'s stage stats."""
        self.store = store

    def _count_eviction(self) -> None:
        # Caller holds the lock.
        self.stats.evictions += 1
        if self.store is not None:
            self.store.stats(CODE_STAGE).evictions += 1

    def get_or_translate(self, module: Module, library=None) -> TranslatedProgram:
        """Return the cached translation of ``module``, translating on miss."""
        fingerprint = module_fingerprint(module, library=library)
        with self._lock:
            program = self._entries.get(fingerprint)
            if program is not None:
                self.stats.hits += 1
                self._entries.move_to_end(fingerprint)
                return program
            self.stats.misses += 1
        # Translate outside the lock: translation is pure and an occasional
        # duplicate translation is cheaper than serializing translators.
        program = translate_module(module, library=library)
        program.fingerprint = fingerprint
        with self._lock:
            self._entries[fingerprint] = program
            self._entries.move_to_end(fingerprint)
            if self.capacity is not None and len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._count_eviction()
        return program

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CodeCacheStats()


#: process-wide cache used by CompiledSimulator unless one is supplied.
_GLOBAL_CODE_CACHE = CodeCache()


def global_code_cache() -> CodeCache:
    """Return the process-wide code cache."""
    return _GLOBAL_CODE_CACHE


def reset_global_code_cache() -> None:
    """Clear the process-wide code cache (used by tests and benchmarks)."""
    _GLOBAL_CODE_CACHE.clear()
