"""Content-addressed code cache for translated modules.

Design-space exploration re-compiles and re-simulates structurally
identical IR over and over (every candidate machine starts from a clone of
the same optimized kernel module).  Fingerprinting the module *structure*
— rather than keying on object identity — lets every clone share one
threaded-code translation: the second and later evaluations of an
identical module skip translation entirely.

The fingerprint is a SHA-256 over a canonical rendering of the module:
functions, blocks and instructions in order, with virtual-register ids
normalized to per-function sequence numbers (clones allocate fresh global
ids, so raw ids would never match).  CUSTOM operations additionally hash
the *signature* of the pattern currently bound to their name, so the same
IR under different registered semantics maps to different cache entries.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Dict, Optional

from ..ir import (
    Argument, Constant, GlobalVariable, Module, Opcode, UndefValue,
    VirtualRegister,
)
from ..obs import global_tracer
from ..obs.metrics import StageStats
from .translator import TranslatedProgram, translate_module


def module_fingerprint(module: Module, library=None) -> str:
    """A structural content hash of ``module``.

    Two modules have equal fingerprints iff they are clones of each other
    (same functions, blocks, instructions, operands, globals) with the same
    custom-op semantics visible in ``library`` (the process-wide extension
    library by default).
    """
    if library is None:
        from ..core.library import global_extension_library

        library = global_extension_library()

    parts = []

    for name, gvar in module.globals.items():
        init = gvar.initializer
        if isinstance(init, (list, tuple)):
            init_text = ",".join(str(v) for v in init)
        else:
            init_text = str(init)
        parts.append(f"g {name} {gvar.value_type} [{init_text}]")

    for function in module.functions.values():
        normalized: Dict[int, int] = {}

        def norm(register) -> int:
            # Per-function sequence number, assigned on first encounter.
            return normalized.setdefault(register.id, len(normalized))

        params = ",".join(str(a.type) for a in function.arguments)
        for argument in function.arguments:
            norm(argument)
        parts.append(f"f {function.name} {function.return_type} ({params})")

        for block in function.blocks:
            parts.append(f"b {block.name}")
            for inst in block.instructions:
                tokens = [inst.opcode.value]
                if inst.dest is not None:
                    tokens.append(f"d{norm(inst.dest)}:{inst.dest.type}")
                for operand in inst.operands:
                    if isinstance(operand, Constant):
                        tokens.append(f"c{operand.value!r}:{operand.type}")
                    elif isinstance(operand, GlobalVariable):
                        tokens.append(f"g{operand.name}")
                    elif isinstance(operand, UndefValue):
                        tokens.append("u")
                    elif isinstance(operand, (VirtualRegister, Argument)):
                        tokens.append(f"r{norm(operand)}")
                    else:  # pragma: no cover - defensive
                        tokens.append(repr(operand))
                if inst.targets:
                    tokens.append("->" + ",".join(t.name for t in inst.targets))
                if inst.callee:
                    tokens.append(f"@{inst.callee}")
                if inst.custom_op:
                    pattern = library.lookup(inst.custom_op)
                    signature = pattern.signature() if pattern is not None else "?"
                    tokens.append(f"x{inst.custom_op}={signature}")
                if inst.alloc_type is not None:
                    tokens.append(f"a{inst.alloc_type}")
                parts.append(" ".join(tokens))

    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()


#: artifact-store stage name under which a bound CodeCache keeps its
#: counters (so ``pipeline.stats()`` shows threaded-code cache pressure
#: next to the staged-compilation stages).
CODE_STAGE = "exec.code"


class CodeCacheStats:
    """Hit/miss counters of one :class:`CodeCache`.

    A view over a :class:`~repro.obs.metrics.StageStats` (itself a view
    over registry counters): an unbound cache counts into a private
    registry, a store-bound cache counts *directly* into the store's
    ``exec.code`` stage — one counter, no mirror to drift.
    """

    _FIELDS = ("hits", "misses", "evictions")

    __slots__ = ("_backing",)

    def __init__(self, backing: Optional[StageStats] = None) -> None:
        object.__setattr__(self, "_backing",
                           backing if backing is not None
                           else StageStats(stage=CODE_STAGE))

    def __getattr__(self, name: str):
        if name in CodeCacheStats._FIELDS:
            return getattr(object.__getattribute__(self, "_backing"), name)
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        if name in CodeCacheStats._FIELDS:
            setattr(object.__getattribute__(self, "_backing"), name, value)
            return
        object.__setattr__(self, name, value)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return 0.0 if self.lookups == 0 else self.hits / self.lookups

    def as_dict(self) -> Dict[str, object]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CodeCacheStats({self.as_dict()!r})"


class CodeCache:
    """An LRU cache mapping module fingerprints to translated programs.

    When bound to an artifact store (``store=`` or :meth:`bind_store`),
    counters live on the owning store's ``exec.code`` stage stats — one
    source of truth shared by ``cache.stats``, ``store.stats_dict()``
    and ``Session.stats()``, so the eviction counts that used to be
    mirrored (and could drift) are now literally the same number.
    """

    def __init__(self, capacity: Optional[int] = 256, store=None) -> None:
        self.capacity = capacity
        self.stats = CodeCacheStats()
        self.store = None
        self._entries: "OrderedDict[str, TranslatedProgram]" = OrderedDict()
        self._lock = threading.Lock()
        if store is not None:
            self.bind_store(store)

    def bind_store(self, store) -> None:
        """Count into ``store``'s ``exec.code`` stage stats from now on.

        Counts accumulated while unbound migrate into the store's stage
        so nothing is lost; the existing ``stats`` view object is
        rebound in place, keeping held references valid.
        """
        self.store = store
        if store is None:
            return
        target = store.stats(CODE_STAGE)
        old = object.__getattribute__(self.stats, "_backing")
        if old is target:
            return
        with self._lock:
            for name in CodeCacheStats._FIELDS:
                count = getattr(old, name)
                if count:
                    setattr(target, name, getattr(target, name) + count)
            object.__setattr__(self.stats, "_backing", target)

    def get_or_translate(self, module: Module, library=None) -> TranslatedProgram:
        """Return the cached translation of ``module``, translating on miss."""
        fingerprint = module_fingerprint(module, library=library)
        with self._lock:
            program = self._entries.get(fingerprint)
            if program is not None:
                self.stats.hits += 1
                self._entries.move_to_end(fingerprint)
                return program
            self.stats.misses += 1
        # Translate outside the lock: translation is pure and an occasional
        # duplicate translation is cheaper than serializing translators.
        with global_tracer().span("engine.translate",
                                  fingerprint=fingerprint[:16]):
            program = translate_module(module, library=library)
        program.fingerprint = fingerprint
        with self._lock:
            self._entries[fingerprint] = program
            self._entries.move_to_end(fingerprint)
            if self.capacity is not None and len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return program

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def clear(self) -> None:
        """Drop entries and zero the counters (in place — views survive)."""
        with self._lock:
            self._entries.clear()
            for name in CodeCacheStats._FIELDS:
                setattr(self.stats, name, 0)


#: process-wide cache used by CompiledSimulator unless one is supplied.
_GLOBAL_CODE_CACHE = CodeCache()


def global_code_cache() -> CodeCache:
    """Return the process-wide code cache."""
    return _GLOBAL_CODE_CACHE


def reset_global_code_cache() -> None:
    """Clear the process-wide code cache (used by tests and benchmarks)."""
    _GLOBAL_CODE_CACHE.clear()
