"""Compiled-execution engine: a drop-in for the functional interpreter.

:class:`CompiledSimulator` exposes the same ``run`` / ``run_profiled`` /
``profile`` contract as :class:`repro.sim.FunctionalSimulator` but executes
threaded code produced by :mod:`repro.exec.translator` and cached by
:mod:`repro.exec.cache`.  On successful runs it produces bit-identical
return values, memory write-backs and :class:`ExecutionProfile` counters;
the interpreter remains the semantic oracle and the differential tests in
``tests/test_exec_engine.py`` enforce the equivalence over the whole
workload suite.

Engine selection elsewhere in the stack (``Toolchain(engine=...)``,
``Evaluator(engine=...)``, ``run_kernel(engine=...)``) resolves through
:func:`make_functional_simulator`, so "interpreter", "compiled" and the
generated-C "native" (:mod:`repro.exec.native`) are interchangeable
functional-execution engines; "native" degrades to "compiled" with a
single per-process warning when no C compiler is available.

Known, deliberate divergences from the interpreter (error paths only):

* the maximum-step check runs per basic block, not per instruction, so a
  runaway program may be stopped a few instructions earlier;
* a read of an undefined virtual register raises :class:`SimulationError`
  without naming the register (the interpreter formats the IR node);
* profiles are flushed per completed call, so a run aborted by an exception
  reports whole-block counts for the faulting block.
"""

from __future__ import annotations

from typing import Optional

from ..ir import Module, PointerType
from ..ir.types import I32
from ..sim.functional import ExecutionProfile, SimulationError, _wrap
from ..sim.memory import Memory, ProgramImage
from .cache import CodeCache, global_code_cache
from .registry import FUNCTIONAL_ENGINES, validate_engine
from .translator import TranslatedFunction, TranslatedProgram


class CompiledSimulator:
    """Executes translated (threaded-code) modules with a flat memory."""

    def __init__(self, module: Module, memory_size: int = 1 << 20,
                 max_steps: int = 50_000_000,
                 cache: Optional[CodeCache] = None) -> None:
        self.module = module
        self.cache = cache if cache is not None else global_code_cache()
        self.program: TranslatedProgram = self.cache.get_or_translate(module)
        # ProgramImage performs the same deterministic bump allocation the
        # translator baked into the code, so the global addresses it assigns
        # to *this* module match the translated constants.
        self.image = ProgramImage(module, Memory(memory_size))
        self.memory = self.image.memory
        self.max_steps = max_steps
        self.profile = ExecutionProfile()
        self._steps = 0
        self._retval = None

    # ------------------------------------------------------------------
    # Public API (mirrors FunctionalSimulator).
    # ------------------------------------------------------------------
    def run(self, function_name: str, *args, copy_back: bool = True):
        """Execute ``function_name`` with Python arguments.

        Same argument lowering as the interpreter: numbers by value, lists
        and tuples copied into simulated memory and passed as pointers,
        with list contents copied back after the call unless ``copy_back``
        is False.
        """
        try:
            function = self.program.functions[function_name]
        except KeyError:
            raise KeyError(f"no function named {function_name} in module "
                           f"{self.module.name}") from None
        if len(args) != len(function.arg_ids):
            raise SimulationError(
                f"{function_name} expects {len(function.arg_ids)} arguments, "
                f"got {len(args)}"
            )

        lowered = []
        writebacks = []
        for formal_type, actual in zip(function.arg_types, args):
            if isinstance(actual, (list, tuple)):
                element = I32
                if isinstance(formal_type, PointerType) and formal_type.pointee is not None:
                    element = formal_type.pointee
                address = self.memory.allocate(max(4, element.size * len(actual)),
                                               element.alignment)
                self.memory.write_array(address, list(actual), element)
                lowered.append(address)
                if copy_back and isinstance(actual, list):
                    writebacks.append((actual, address, len(actual), element))
            else:
                lowered.append(_wrap(actual, formal_type))

        result = self._call(function, lowered)

        for target, address, count, element in writebacks:
            target[:] = self.memory.read_array(address, count, element)
        return result

    def run_profiled(self, function_name: str, *args):
        """Run and then write the measured profile back onto the module."""
        result = self.run(function_name, *args)
        self.profile.apply_to_module(self.module)
        return result

    # ------------------------------------------------------------------
    # Execution core.
    # ------------------------------------------------------------------
    def _call(self, function: TranslatedFunction, args):
        regs = {}
        for reg_id, value in zip(function.arg_ids, args):
            regs[reg_id] = value

        blocks = function.blocks
        if not blocks:
            raise SimulationError(f"function {function.name} has no blocks")
        visits = [0] * len(blocks)
        index = 0
        try:
            while True:
                block = blocks[index]
                visits[index] += 1
                self._steps += block.n_steps
                if self._steps > self.max_steps:
                    raise SimulationError("maximum step count exceeded")
                for op in block.ops:
                    op(regs, self)
                index = block.terminator(regs, self)
                if index is None:
                    break
        except KeyError:
            raise SimulationError(
                f"read of undefined register in {function.name}") from None
        finally:
            self._flush(function, visits)
        result = self._retval
        self._retval = None
        return result

    def _flush(self, function: TranslatedFunction, visits) -> None:
        """Fold per-block visit counts into the execution profile."""
        profile = self.profile
        block_counts = profile.block_counts.setdefault(function.name, {})
        opcode_counts = profile.opcode_counts
        call_counts = profile.call_counts
        for block, count in zip(function.blocks, visits):
            if not count:
                continue
            block_counts[block.name] = block_counts.get(block.name, 0) + count
            profile.instructions_executed += count * block.n_steps
            for opcode, per_visit in block.opcode_delta.items():
                opcode_counts[opcode] = (
                    opcode_counts.get(opcode, 0) + count * per_visit)
            profile.loads += count * block.loads
            profile.stores += count * block.stores
            profile.branches += count * block.branches
            for callee, per_visit in block.call_delta.items():
                call_counts[callee] = (
                    call_counts.get(callee, 0) + count * per_visit)


#: set after the first native → compiled degradation so a compiler-less
#: host warns exactly once per process, not once per simulator.
_NATIVE_FALLBACK_WARNED = False


def reset_native_fallback_warning() -> None:
    """Re-arm the once-per-process native-fallback warning (tests)."""
    global _NATIVE_FALLBACK_WARNED
    _NATIVE_FALLBACK_WARNED = False


def make_functional_simulator(module: Module, engine: str = "interpreter",
                              **kwargs):
    """Build the requested functional-execution engine for ``module``.

    ``engine`` is ``"interpreter"`` (the reference
    :class:`~repro.sim.FunctionalSimulator`), ``"compiled"`` (this
    module's :class:`CompiledSimulator`) or ``"native"`` (the generated-C
    :class:`~repro.exec.native.NativeSimulator`).  All expose the same
    ``run``/``run_profiled``/``profile`` contract.

    ``"native"`` is a *ceiling*, not a hard requirement: when no C
    compiler is available — or the module was quarantined after a compile
    failure — the call degrades to ``"compiled"`` and a single
    :class:`RuntimeWarning` is emitted per process.
    """
    global _NATIVE_FALLBACK_WARNED

    validate_engine(engine, "functional")
    if engine == "interpreter":
        from ..sim.functional import FunctionalSimulator

        kwargs.pop("cache", None)
        kwargs.pop("native_cache", None)
        kwargs.pop("store", None)
        return FunctionalSimulator(module, **kwargs)
    if engine == "native":
        from .native import NativeSimulator, NativeUnavailableError

        try:
            return NativeSimulator(module, **kwargs)
        except NativeUnavailableError as exc:
            if not _NATIVE_FALLBACK_WARNED:
                _NATIVE_FALLBACK_WARNED = True
                import warnings

                warnings.warn(
                    f"native engine unavailable ({exc}); falling back to "
                    f"the compiled engine", RuntimeWarning, stacklevel=2)
            engine = "compiled"
    if engine == "compiled":
        kwargs.pop("native_cache", None)
        kwargs.pop("store", None)
        return CompiledSimulator(module, **kwargs)
    raise ValueError(
        f"engine '{engine}' is registered but has no constructor here; "
        f"teach make_functional_simulator about it")
