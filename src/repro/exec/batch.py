"""Batched design-space evaluation with a persistent result cache.

The explorer's inner loop — compile a candidate machine's workload, run
it, reduce to metrics — is embarrassingly parallel across design points
and completely deterministic given the evaluator configuration.
:class:`BatchEvaluator` exploits both properties:

* **batching** — ``evaluate_many`` deduplicates the requested points and
  fans the misses out over a process pool (``workers > 1``) or evaluates
  them serially in-process (``workers <= 1``, the default: cheap, no pool
  startup, still cached);
* **caching** — results are memoized in a
  :class:`repro.pipeline.ArtifactStore` (the same content-addressed store
  the staged compile pipeline uses) under the ``"evaluation"`` stage,
  keyed by a SHA-256 of the full evaluation recipe (workload mix, problem
  size, optimization level, seed, engine, design point); when
  ``cache_dir`` is given the store's disk layer makes repeated
  explorations of the same space nearly free even across processes.

Worker processes are primed by fork inheritance when the platform allows
it (the parent's evaluator, with its pre-compiled kernel IR, is reused
copy-on-write); under spawn they rebuild the evaluator from a primitive
spec.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..dse.space import DesignPoint
from ..obs import global_tracer
from ..obs.metrics import MetricsRegistry
from ..pipeline.store import ArtifactStore, SupportsArtifactStore

#: bump when the evaluation recipe or on-disk format changes incompatibly
#: (2: the memo moved into ArtifactStore — cache_dir/evaluation/<key>.pkl
#: holding a (payload, seconds) tuple; 3: the recipe gained the fidelity
#: selector and evaluations carry fidelity/point fields; 4: the recipe
#: gained the application-mix serialization so application evaluations
#: are content-addressed).
_CACHE_SCHEMA = 4

#: artifact-store stage name under which evaluations are memoized.
EVALUATION_STAGE = "evaluation"

#: evaluator inherited by forked workers (see _initialize_worker).
_WORKER_EVALUATOR = None

#: serializes the set-global -> fork window so concurrent BatchEvaluators
#: cannot hand a worker pool the wrong evaluator.
_FORK_LOCK = threading.Lock()


@dataclass(frozen=True)
class EvaluatorSpec:
    """Primitive, picklable recipe for rebuilding an Evaluator in a worker."""

    mix_name: str
    weights: tuple            # ((kernel, weight), ...) sorted
    size: Optional[int]
    opt_level: int
    seed: int
    engine: str
    fidelity: str = "cycle"
    #: canonical :class:`~repro.dse.app.ApplicationMix` JSON when the
    #: recipe evaluates applications (None for kernel mixes).  Carrying
    #: the full serialization — not just the mix name — keeps evaluation
    #: cache keys content-addressed: two app mixes sharing a name but
    #: not a graph never share a memo entry.
    application: Optional[str] = None

    @staticmethod
    def from_evaluator(evaluator) -> "EvaluatorSpec":
        fidelity = getattr(evaluator, "fidelity", "cycle")
        engine = getattr(evaluator, "engine", "cycle")
        if fidelity == "trace":
            # The measurement path ignores the engine selector at trace
            # fidelity (the profiler is always the threaded-code engine);
            # normalize it so equivalent recipes share one cache entry.
            engine = "compiled"
        return EvaluatorSpec(
            mix_name=evaluator.mix.name,
            weights=tuple(sorted(evaluator.mix.weights.items())),
            size=evaluator.size,
            opt_level=evaluator.opt_level,
            seed=evaluator.seed,
            engine=engine,
            fidelity=fidelity,
            application=getattr(evaluator, "application_json", None),
        )

    def build(self, pipeline=None):
        if self.application is not None:
            from ..dse.app import AppEvaluator, ApplicationMix

            mix = ApplicationMix.from_json(self.application)
            return AppEvaluator(mix, size=self.size,
                                opt_level=self.opt_level, seed=self.seed,
                                engine=self.engine, fidelity=self.fidelity,
                                pipeline=pipeline)
        from ..dse.objectives import Evaluator
        from ..workloads.suite import WorkloadMix

        mix = WorkloadMix(self.mix_name, dict(self.weights))
        return Evaluator(mix, size=self.size, opt_level=self.opt_level,
                         seed=self.seed, engine=self.engine,
                         fidelity=self.fidelity, pipeline=pipeline)


def _initialize_worker(spec: EvaluatorSpec) -> None:
    global _WORKER_EVALUATOR
    if _WORKER_EVALUATOR is None:
        _WORKER_EVALUATOR = spec.build()


def _evaluate_point(point: DesignPoint):
    return _WORKER_EVALUATOR.evaluate(
        point.to_machine(), custom_area_budget=point.custom_area_budget)


#: the batch-evaluator counter names, as ``batch_<name>`` registry series.
_BATCH_FIELDS = ("requested", "memory_hits", "disk_hits", "evaluated",
                 "batches")

_BATCH_HELP = {
    "batch_requested": "design points requested from the batch evaluator",
    "batch_memory_hits": "evaluations served from the memory layer",
    "batch_disk_hits": "evaluations served from the disk layer",
    "batch_evaluated": "design points actually evaluated",
    "batch_batches": "evaluate_many calls",
}


class BatchStats:
    """What one BatchEvaluator did so far — a registry-counter view.

    Each evaluator counts into its own private
    :class:`~repro.obs.MetricsRegistry` (evaluators routinely share a
    store, so store-level aggregation would conflate them); the daemon
    aggregates across workers by merging snapshots instead.
    """

    __slots__ = ("registry", "_counters")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        if registry is None:
            registry = MetricsRegistry()
        object.__setattr__(self, "registry", registry)
        object.__setattr__(self, "_counters", {
            name: registry.counter(f"batch_{name}",
                                   help=_BATCH_HELP[f"batch_{name}"])
            for name in _BATCH_FIELDS
        })

    def __getattr__(self, name: str) -> int:
        counters = object.__getattribute__(self, "_counters")
        if name in counters:
            return int(counters[name].value)
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        counters = object.__getattribute__(self, "_counters")
        if name in counters:
            counters[name].set(float(value))
            return
        raise AttributeError(f"BatchStats has no counter {name!r}")

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def hit_rate(self) -> float:
        return 0.0 if self.requested == 0 else self.hits / self.requested

    def as_dict(self) -> Dict[str, object]:
        return {"requested": self.requested, "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits, "evaluated": self.evaluated,
                "batches": self.batches, "hit_rate": round(self.hit_rate, 4)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BatchStats({self.as_dict()!r})"


class BatchEvaluator:
    """Evaluates design points in parallel with persistent memoization."""

    def __init__(self, evaluator, workers: int = 0,
                 cache_dir: Optional[str] = None,
                 store: Optional[SupportsArtifactStore] = None) -> None:
        self.evaluator = evaluator
        self.workers = workers
        self.cache_dir = cache_dir
        self.spec = EvaluatorSpec.from_evaluator(evaluator)
        self.stats = BatchStats()
        #: evaluations live in the same kind of content-addressed store as
        #: compile artifacts; pass one in to share it (and its disk layer)
        #: with a compile pipeline or another batch evaluator.
        self.store = (store if store is not None
                      else ArtifactStore(capacity=None, cache_dir=cache_dir))

    # ------------------------------------------------------------------
    # Cache keys.
    # ------------------------------------------------------------------
    def point_key(self, point: DesignPoint) -> str:
        """Content hash of the full evaluation recipe for ``point``."""
        recipe = (_CACHE_SCHEMA, self.spec.mix_name, self.spec.weights,
                  self.spec.size, self.spec.opt_level, self.spec.seed,
                  self.spec.engine, self.spec.fidelity,
                  self.spec.application, point.cache_key())
        return hashlib.sha256(repr(recipe).encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------
    def evaluate(self, point: DesignPoint):
        """Evaluate one point through every cache layer."""
        return self.evaluate_many([point])[0]

    def evaluate_many(self, points: Sequence[DesignPoint]) -> List:
        """Evaluate ``points`` (order preserved, duplicates deduplicated)."""
        with global_tracer().span("batch.evaluate", points=len(points),
                                  workers=self.workers) as span:
            results = self._evaluate_many(points)
            span.note(evaluated=self.stats.evaluated,
                      hit_rate=round(self.stats.hit_rate, 4))
            return results

    def _evaluate_many(self, points: Sequence[DesignPoint]) -> List:
        self.stats.batches += 1
        self.stats.requested += len(points)

        keys = [self.point_key(point) for point in points]
        results: Dict[str, object] = {}
        missing: Dict[str, DesignPoint] = {}
        for key, point in zip(keys, points):
            if key in results:
                self.stats.memory_hits += 1
                continue
            if key in missing:
                self.stats.memory_hits += 1
                continue
            artifact = self.store.get(EVALUATION_STAGE, key, persist=True)
            if artifact is not None:
                if artifact.source == "disk":
                    self.stats.disk_hits += 1
                else:
                    self.stats.memory_hits += 1
                results[key] = artifact.payload
                continue
            missing[key] = point

        if missing:
            evaluated = self._evaluate_missing(list(missing.items()))
            for key, evaluation in evaluated:
                results[key] = evaluation
                self.store.put(EVALUATION_STAGE, key, evaluation, persist=True)
            self.stats.evaluated += len(evaluated)

        # Remember which design point each evaluation answers (same point
        # for every caller sharing a memo entry), so re-scoring passes can
        # map Pareto evaluations back to points.
        by_key = dict(zip(keys, points))
        for key, evaluation in results.items():
            if getattr(evaluation, "point", None) is None:
                evaluation.point = by_key.get(key)

        return [results[key] for key in keys]

    def _evaluate_missing(self, items):
        """items: list of (key, point) pairs not found in any cache."""
        if self.workers <= 1 or len(items) < 2:
            return [(key, self.evaluator.evaluate(
                point.to_machine(),
                custom_area_budget=point.custom_area_budget))
                for key, point in items]

        global _WORKER_EVALUATOR
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(method)
        workers = min(self.workers, len(items))
        # The global only matters at fork time: hold the lock from setting
        # it until the pool's workers exist, then restore it.
        with _FORK_LOCK:
            if method == "fork":
                # Children inherit the parent's evaluator (pre-compiled
                # kernel IR included) copy-on-write; no recompilation.
                _WORKER_EVALUATOR = self.evaluator
            try:
                pool = context.Pool(processes=workers,
                                    initializer=_initialize_worker,
                                    initargs=(self.spec,))
            finally:
                if method == "fork":
                    _WORKER_EVALUATOR = None
        with pool:
            evaluations = pool.map(_evaluate_point,
                                   [point for _key, point in items])
        return [(key, evaluation)
                for (key, _point), evaluation in zip(items, evaluations)]
