"""C renderer for the native execution engine.

Renders one IR module into a single self-contained C translation unit
whose semantics are *bit-identical* to the functional interpreter on
successful runs: every register is represented as ``int64_t`` (integers
and pointers — every wrapped integer value the interpreter can produce
fits) or ``double`` (floats — the interpreter stores Python floats and
applies the f32 round only on destination writes, which the rendered
code mirrors with ``(double)(float)`` casts).  Destination wraps inline
the exact masks of :func:`repro.sim.functional._wrap`, memory accesses
replicate :class:`repro.sim.Memory`'s guard/bounds checks and bump
allocator, and global addresses are baked in as constants using the same
deterministic layout the threaded-code translator computes.

Error paths trap with a status code instead of formatting messages; the
Python runtime (:mod:`repro.exec.native`) maps them back to the
interpreter's exception types and messages.

Constructs the renderer cannot reproduce exactly (unsigned 64-bit
registers, constants outside the int64 range, float operands feeding
integer-only or CUSTOM ops, return-type/operand class mismatches) raise
:class:`UnsupportedNativeModule`; the engine then falls back to the
threaded-code engine, so unsupported modules lose speed, not
correctness.

Deliberate divergences (error/pathological paths only, mirroring the
documented divergences of :class:`repro.exec.CompiledSimulator`):

* the maximum-step check runs per basic block, not per instruction;
* reads of never-written registers see 0 instead of raising;
* int64-overflowing float→int conversions are undefined instead of
  arbitrary precision;
* NaN comparisons follow IEEE (Python's ``min``/``max`` ordering of NaN
  operands differs), and huge ALLOCA sizes trap with clamped byte
  counts in the message.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ir import (
    Argument, Constant, Function, GlobalVariable, Instruction, IntType, Module,
    Opcode, PointerType, UndefValue, VirtualRegister,
)
from ..ir.types import FloatType, I32, Type, VoidType
from ..sim.memory import Memory

#: bump when the rendered C or the ctx/trap contract changes; part of the
#: native cache key via the toolchain ABI id.
RENDER_SCHEMA = 1

# Trap status codes shared with the Python runtime (repro.exec.native).
TRAP_OK = 0
TRAP_STEPS = 1
TRAP_DIV0 = 2
TRAP_REM0 = 3
TRAP_FDIV0 = 4
TRAP_OOB = 5
TRAP_OOM = 6
TRAP_FELL_OFF = 7
TRAP_BAD_CALL = 8
TRAP_CUSTOM = 9

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


class UnsupportedNativeModule(Exception):
    """The module uses a construct the renderer cannot reproduce exactly."""


@dataclass(frozen=True)
class RenderedFunction:
    """ABI metadata for one rendered C function."""

    name: str
    index: int
    arg_classes: Tuple[str, ...]   # "i" (int64 slot) or "f" (double slot)
    return_class: str              # "i" or "f"
    block_base: int                # first flat visit-counter index
    n_blocks: int


@dataclass(frozen=True)
class RenderedProgram:
    """One module rendered to C, plus everything the runtime needs."""

    module_name: str
    source: str
    functions: Dict[str, RenderedFunction]
    total_blocks: int
    #: custom-op names by callback index.
    custom_ops: Tuple[str, ...]
    #: callee names for TRAP_BAD_CALL sites, by fault index.
    bad_calls: Tuple[str, ...]
    #: (function, block) names by flat visit index, for trap messages.
    flat_blocks: Tuple[Tuple[str, str], ...]


_PRELUDE = """\
#include <stdint.h>
#include <string.h>
#include <math.h>

typedef int32_t (*repro_custom_cb)(void *handle, int32_t op,
                                   const int64_t *in, int32_t n,
                                   int64_t *out);

typedef struct {
    uint8_t *mem;
    int64_t mem_size;
    int64_t next_free;
    int64_t steps;
    int64_t max_steps;
    int64_t taken;
    int64_t *visits;
    int64_t fault_a;
    int64_t fault_b;
    int32_t status;
    int32_t ret_flag;
    repro_custom_cb custom;
    void *custom_handle;
} repro_ctx;
"""

#: integer-only binary opcodes (float operands are unsupported).
_INT_ONLY = {Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
             Opcode.SAR, Opcode.DIV, Opcode.REM, Opcode.NOT}

_CMP_OPS = {
    Opcode.CMPEQ: "==", Opcode.FCMPEQ: "==", Opcode.CMPNE: "!=",
    Opcode.CMPLT: "<", Opcode.FCMPLT: "<", Opcode.CMPLE: "<=",
    Opcode.FCMPLE: "<=", Opcode.CMPGT: ">", Opcode.CMPGE: ">=",
}


def _type_class(type_: Type) -> str:
    """C value class of a register/argument type: "i" or "f"."""
    if isinstance(type_, IntType):
        if type_.bits == 64 and not type_.signed:
            raise UnsupportedNativeModule("unsigned 64-bit register")
        return "i"
    if isinstance(type_, FloatType):
        return "f"
    if isinstance(type_, PointerType):
        return "i"
    raise UnsupportedNativeModule(f"register of unsupported type {type_}")


def _int_literal(value: int) -> str:
    if not _INT64_MIN <= value <= _INT64_MAX:
        raise UnsupportedNativeModule(
            f"integer constant {value} outside the int64 range")
    if value == _INT64_MIN:
        return "(-9223372036854775807LL - 1)"
    return f"{value}LL"


def _float_literal(value: float) -> str:
    if math.isnan(value) or math.isinf(value):
        raise UnsupportedNativeModule(f"non-finite float constant {value!r}")
    return value.hex()


class _FunctionContext:
    """Per-function rendering state: register classes and block indices."""

    def __init__(self, function: Function, index: int, block_base: int) -> None:
        self.function = function
        self.index = index
        self.block_base = block_base
        self.block_index = {id(b): i for i, b in enumerate(function.blocks)}
        self.reg_class: Dict[int, str] = {}
        self.formal_ids = {a.id for a in function.arguments}

    def classify(self, register) -> str:
        klass = _type_class(register.type)
        seen = self.reg_class.get(register.id)
        if seen is None:
            self.reg_class[register.id] = klass
        elif seen != klass:
            raise UnsupportedNativeModule(
                f"register r{register.id} used as both int and float")
        return klass


class _Renderer:
    """Renders one module; use :func:`render_c_program`."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.lines: List[str] = []
        self.custom_index: Dict[str, int] = {}
        self.bad_calls: List[str] = []
        self.flat_blocks: List[Tuple[str, str]] = []
        self.functions_meta: Dict[str, RenderedFunction] = {}
        self.global_addresses: Dict[str, int] = {}
        self._fn_index = {name: i
                          for i, name in enumerate(module.functions)}

    # ------------------------------------------------------------------
    def render(self) -> RenderedProgram:
        self._layout_globals()
        contexts = []
        base = 0
        for index, function in enumerate(self.module.functions.values()):
            if not function.blocks:
                raise UnsupportedNativeModule(
                    f"function {function.name} has no blocks")
            ctx = _FunctionContext(function, index, base)
            contexts.append(ctx)
            for block in function.blocks:
                self.flat_blocks.append((function.name, block.name))
            base += len(function.blocks)
        total_blocks = base

        self.lines.append(f"/* module {self.module.name} — generated by "
                          f"repro.exec.nativegen schema {RENDER_SCHEMA} */")
        self.lines.append(_PRELUDE)
        for ctx in contexts:
            self.lines.append(self._prototype(ctx) + ";")
        self.lines.append("")
        for ctx in contexts:
            self._render_function(ctx)
        for ctx in contexts:
            self._render_wrapper(ctx)

        for ctx in contexts:
            function = ctx.function
            self.functions_meta[function.name] = RenderedFunction(
                name=function.name,
                index=ctx.index,
                arg_classes=tuple(_type_class(a.type)
                                  for a in function.arguments),
                return_class=self._return_class(function),
                block_base=ctx.block_base,
                n_blocks=len(function.blocks),
            )

        return RenderedProgram(
            module_name=self.module.name,
            source="\n".join(self.lines) + "\n",
            functions=self.functions_meta,
            total_blocks=total_blocks,
            custom_ops=tuple(self.custom_index),
            bad_calls=tuple(self.bad_calls),
            flat_blocks=tuple(self.flat_blocks),
        )

    # ------------------------------------------------------------------
    def _layout_globals(self) -> None:
        # Same deterministic bump layout as ProgramImage._load_globals and
        # ModuleTranslator._layout_globals.
        cursor = Memory.GUARD
        for name, gvar in self.module.globals.items():
            vtype = gvar.value_type
            alignment = vtype.alignment
            nbytes = max(4, vtype.size)
            address = (cursor + alignment - 1) // alignment * alignment
            cursor = address + nbytes
            self.global_addresses[name] = address

    def _return_class(self, function: Function) -> str:
        rt = function.return_type
        if rt is None or isinstance(rt, VoidType):
            return "i"
        return _type_class(rt)

    def _prototype(self, ctx: _FunctionContext) -> str:
        function = ctx.function
        rtype = "double" if self._return_class(function) == "f" else "int64_t"
        params = ["repro_ctx *ctx"]
        for arg in function.arguments:
            ctx.classify(arg)
            ctype = "double" if _type_class(arg.type) == "f" else "int64_t"
            params.append(f"{ctype} r{arg.id}")
        return f"static {rtype} fn_{ctx.index}({', '.join(params)})"

    # ------------------------------------------------------------------
    # Operand expressions.
    # ------------------------------------------------------------------
    def _expr(self, operand, ctx: _FunctionContext) -> Tuple[str, str]:
        """Return (value class, parenthesized C expression)."""
        if isinstance(operand, Constant):
            value = operand.value
            if isinstance(value, float):
                return "f", f"({_float_literal(value)})"
            return "i", f"({_int_literal(int(value))})"
        if isinstance(operand, GlobalVariable):
            try:
                address = self.global_addresses[operand.name]
            except KeyError:
                raise UnsupportedNativeModule(
                    f"global {operand.name} has no address") from None
            return "i", f"({address}LL)"
        if isinstance(operand, UndefValue):
            return "i", "(0)"
        if isinstance(operand, (VirtualRegister, Argument)):
            return ctx.classify(operand), f"(r{operand.id})"
        raise UnsupportedNativeModule(f"cannot render operand {operand!r}")

    def _as_int(self, klass: str, expr: str) -> str:
        """An int64-typed expression (floats truncate, like Python int())."""
        return f"((int64_t){expr})" if klass == "f" else expr

    def _as_double(self, klass: str, expr: str) -> str:
        return f"((double){expr})" if klass == "i" else expr

    def _wrap(self, type_: Type, klass: str, expr: str) -> str:
        """Destination-write wrap, mirroring repro.sim.functional._wrap."""
        if isinstance(type_, IntType):
            e = self._as_int(klass, expr)
            if type_.bits == 64:
                return e  # signed 64-bit wrap is the identity on int64
            if type_.signed:
                if type_.bits == 1:
                    return f"((({e}) & 1) ? -1 : 0)"
                return (f"((int64_t)(int{type_.bits}_t)"
                        f"(uint{type_.bits}_t)(uint64_t){e})")
            mask = (1 << type_.bits) - 1
            return f"((int64_t)((uint64_t){e} & {mask:#x}ULL))"
        if isinstance(type_, FloatType):
            e = self._as_double(klass, expr)
            if type_.bits == 32:
                return f"((double)(float){e})"
            return e
        if isinstance(type_, PointerType):
            e = self._as_int(klass, expr)
            return f"((int64_t)((uint64_t){e} & 0xffffffffULL))"
        raise UnsupportedNativeModule(f"destination of unsupported type {type_}")

    def _assign(self, inst: Instruction, ctx: _FunctionContext,
                klass: str, expr: str) -> str:
        dest = inst.dest
        ctx.classify(dest)
        return f"r{dest.id} = {self._wrap(dest.type, klass, expr)};"

    def _trap(self, code: int, fault_a: str = "0", fault_b: str = "0") -> str:
        return (f"{{ ctx->status = {code}; ctx->fault_a = {fault_a}; "
                f"ctx->fault_b = {fault_b}; return 0; }}")

    # ------------------------------------------------------------------
    # Function bodies.
    # ------------------------------------------------------------------
    def _render_function(self, ctx: _FunctionContext) -> None:
        function = ctx.function
        body: List[str] = []
        for bi, block in enumerate(function.blocks):
            body.append(f"B{ctx.index}_{bi}:")
            n_steps = len(block.instructions)
            body.append(f"  ctx->steps += {n_steps};")
            body.append("  if (ctx->steps > ctx->max_steps) "
                        + self._trap(TRAP_STEPS))
            body.append(f"  ctx->visits[{ctx.block_base + bi}] += 1;")
            terminated = False
            for inst in block.instructions:
                if inst.is_terminator():
                    body.extend("  " + line
                                for line in self._terminator(inst, ctx))
                    terminated = True
                    break
                body.extend("  " + line
                            for line in self._instruction(inst, ctx))
            if not terminated:
                body.append("  " + self._trap(
                    TRAP_FELL_OFF, str(ctx.block_base + bi)))

        # Declarations come after rendering so every register is known.
        decls = []
        for reg_id in sorted(ctx.reg_class):
            if reg_id in ctx.formal_ids:
                continue
            ctype = "double" if ctx.reg_class[reg_id] == "f" else "int64_t"
            init = "0.0" if ctx.reg_class[reg_id] == "f" else "0"
            decls.append(f"  {ctype} r{reg_id} = {init};")

        self.lines.append(self._prototype(ctx) + " {")
        self.lines.extend(decls)
        self.lines.extend(body)
        self.lines.append("}")
        self.lines.append("")

    def _render_wrapper(self, ctx: _FunctionContext) -> None:
        function = ctx.function
        args = []
        for j, arg in enumerate(function.arguments):
            slot = "fargs" if _type_class(arg.type) == "f" else "iargs"
            args.append(f"{slot}[{j}]")
        call = f"fn_{ctx.index}(ctx{''.join(', ' + a for a in args)})"
        self.lines.append(
            f"int64_t repro_run_{ctx.index}(repro_ctx *ctx, "
            "const int64_t *iargs, const double *fargs, double *fret) {")
        self.lines.append("  (void)iargs; (void)fargs;")
        if self._return_class(function) == "f":
            self.lines.append(f"  *fret = {call};")
            self.lines.append("  return 0;")
        else:
            self.lines.append("  *fret = 0.0;")
            self.lines.append(f"  return {call};")
        self.lines.append("}")
        self.lines.append("")

    # ------------------------------------------------------------------
    # Terminators.
    # ------------------------------------------------------------------
    def _terminator(self, inst: Instruction, ctx: _FunctionContext) -> List[str]:
        op = inst.opcode
        if op is Opcode.JUMP:
            target = ctx.block_index[id(inst.targets[0])]
            return [f"goto B{ctx.index}_{target};"]
        if op is Opcode.BRANCH:
            t = ctx.block_index[id(inst.targets[0])]
            f = ctx.block_index[id(inst.targets[1])]
            klass, cond = self._expr(inst.operands[0], ctx)
            return [f"if ({cond} != 0) {{ ctx->taken += 1; "
                    f"goto B{ctx.index}_{t}; }}",
                    f"goto B{ctx.index}_{f};"]
        if op is Opcode.RETURN:
            fn_class = self._return_class(ctx.function)
            if inst.operands:
                klass, expr = self._expr(inst.operands[0], ctx)
                if klass != fn_class:
                    raise UnsupportedNativeModule(
                        f"return value class mismatch in {ctx.function.name}")
                return ["ctx->ret_flag = 1;", f"return {expr};"]
            return ["ctx->ret_flag = 0;", "return 0;"]
        raise UnsupportedNativeModule(f"unexpected terminator {op}")

    # ------------------------------------------------------------------
    # Straight-line instructions.
    # ------------------------------------------------------------------
    def _instruction(self, inst: Instruction,
                     ctx: _FunctionContext) -> List[str]:
        op = inst.opcode

        if op in (Opcode.ADD, Opcode.SUB, Opcode.MUL,
                  Opcode.FADD, Opcode.FSUB, Opcode.FMUL):
            ka, a = self._expr(inst.operands[0], ctx)
            kb, b = self._expr(inst.operands[1], ctx)
            sym = {"add": "+", "sub": "-", "mul": "*",
                   "fadd": "+", "fsub": "-", "fmul": "*"}[op.value]
            if ka == "f" or kb == "f" or op.value.startswith("f"):
                expr = (f"({self._as_double(ka, a)} {sym} "
                        f"{self._as_double(kb, b)})")
                return [self._assign(inst, ctx, "f", expr)]
            # Unsigned arithmetic avoids signed-overflow UB; the low 64
            # bits are exact, and every destination wrap only needs those.
            expr = f"((int64_t)((uint64_t){a} {sym} (uint64_t){b}))"
            return [self._assign(inst, ctx, "i", expr)]

        if op in (Opcode.AND, Opcode.OR, Opcode.XOR):
            a = self._int_operand(inst.operands[0], ctx)
            b = self._int_operand(inst.operands[1], ctx)
            sym = {"and": "&", "or": "|", "xor": "^"}[op.value]
            return [self._assign(inst, ctx, "i", f"({a} {sym} {b})")]

        if op is Opcode.SHL:
            a = self._int_operand(inst.operands[0], ctx)
            b = self._int_operand(inst.operands[1], ctx)
            expr = f"((int64_t)((uint64_t){a} << ((uint64_t){b} & 31)))"
            return [self._assign(inst, ctx, "i", expr)]
        if op is Opcode.SHR:
            a = self._int_operand(inst.operands[0], ctx)
            b = self._int_operand(inst.operands[1], ctx)
            expr = (f"((int64_t)(((uint64_t){a} & 0xffffffffULL) >> "
                    f"((uint64_t){b} & 31)))")
            return [self._assign(inst, ctx, "i", expr)]
        if op is Opcode.SAR:
            a = self._int_operand(inst.operands[0], ctx)
            b = self._int_operand(inst.operands[1], ctx)
            expr = f"({a} >> (int)((uint64_t){b} & 31))"
            return [self._assign(inst, ctx, "i", expr)]

        if op is Opcode.DIV or op is Opcode.REM:
            a = self._int_operand(inst.operands[0], ctx)
            b = self._int_operand(inst.operands[1], ctx)
            trap = TRAP_DIV0 if op is Opcode.DIV else TRAP_REM0
            if op is Opcode.DIV:
                value = ("(_db == -1) ? (int64_t)(0 - (uint64_t)_da) "
                         ": (_da / _db)")
            else:
                value = "(_db == -1) ? 0 : (_da % _db)"
            return [
                "{",
                f"  int64_t _da = {a}; int64_t _db = {b};",
                f"  if (_db == 0) {self._trap(trap)}",
                f"  {self._assign(inst, ctx, 'i', f'({value})')}",
                "}",
            ]

        if op is Opcode.FDIV:
            ka, a = self._expr(inst.operands[0], ctx)
            kb, b = self._expr(inst.operands[1], ctx)
            return [
                "{",
                f"  double _fb = {self._as_double(kb, b)};",
                f"  if (_fb == 0.0) {self._trap(TRAP_FDIV0)}",
                f"  {self._assign(inst, ctx, 'f', f'({self._as_double(ka, a)} / _fb)')}",
                "}",
            ]

        if op is Opcode.MIN or op is Opcode.MAX:
            ka, a = self._expr(inst.operands[0], ctx)
            kb, b = self._expr(inst.operands[1], ctx)
            sym = "<" if op is Opcode.MIN else ">"
            if ka == "f" or kb == "f":
                pa, pb = self._as_double(ka, a), self._as_double(kb, b)
                expr = f"(({pa} {sym} {pb}) ? {pa} : {pb})"
                return [self._assign(inst, ctx, "f", expr)]
            expr = f"(({a} {sym} {b}) ? {a} : {b})"
            return [self._assign(inst, ctx, "i", expr)]

        if op is Opcode.ABS:
            ka, a = self._expr(inst.operands[0], ctx)
            if ka == "f":
                return [self._assign(inst, ctx, "f", f"(fabs({a}))")]
            expr = f"(({a} < 0) ? (int64_t)(0 - (uint64_t){a}) : {a})"
            return [self._assign(inst, ctx, "i", expr)]

        if op is Opcode.NEG or op is Opcode.FNEG:
            ka, a = self._expr(inst.operands[0], ctx)
            if ka == "f" or op is Opcode.FNEG:
                return [self._assign(inst, ctx, "f",
                                     f"(-{self._as_double(ka, a)})")]
            return [self._assign(inst, ctx, "i",
                                 f"((int64_t)(0 - (uint64_t){a}))")]

        if op is Opcode.NOT:
            a = self._int_operand(inst.operands[0], ctx)
            return [self._assign(inst, ctx, "i", f"(~{a})")]

        if op in _CMP_OPS:
            ka, a = self._expr(inst.operands[0], ctx)
            kb, b = self._expr(inst.operands[1], ctx)
            sym = _CMP_OPS[op]
            if ka == "f" or kb == "f":
                expr = (f"((int64_t)({self._as_double(ka, a)} {sym} "
                        f"{self._as_double(kb, b)}))")
            else:
                expr = f"((int64_t)({a} {sym} {b}))"
            return [self._assign(inst, ctx, "i", expr)]

        if op in (Opcode.MOV, Opcode.SEXT, Opcode.ZEXT, Opcode.TRUNC):
            klass, a = self._expr(inst.operands[0], ctx)
            return [self._assign(inst, ctx, klass, a)]

        if op is Opcode.ITOF:
            klass, a = self._expr(inst.operands[0], ctx)
            return [self._assign(inst, ctx, "f", self._as_double(klass, a))]
        if op is Opcode.FTOI:
            klass, a = self._expr(inst.operands[0], ctx)
            return [self._assign(inst, ctx, "i", self._as_int(klass, a))]

        if op is Opcode.SELECT:
            kc, c = self._expr(inst.operands[0], ctx)
            kt, t = self._expr(inst.operands[1], ctx)
            kf, f = self._expr(inst.operands[2], ctx)
            if kt == "f" or kf == "f":
                expr = (f"(({c} != 0) ? {self._as_double(kt, t)} : "
                        f"{self._as_double(kf, f)})")
                return [self._assign(inst, ctx, "f", expr)]
            expr = f"(({c} != 0) ? {t} : {f})"
            return [self._assign(inst, ctx, "i", expr)]

        if op is Opcode.LOAD:
            return self._load(inst, ctx)
        if op is Opcode.STORE:
            return self._store(inst, ctx)
        if op is Opcode.ALLOCA:
            return self._alloca(inst, ctx)
        if op is Opcode.CALL:
            return self._call(inst, ctx)
        if op is Opcode.CUSTOM:
            return self._custom(inst, ctx)

        raise UnsupportedNativeModule(f"unimplemented opcode {op}")

    def _int_operand(self, operand, ctx: _FunctionContext) -> str:
        klass, expr = self._expr(operand, ctx)
        if klass != "i":
            raise UnsupportedNativeModule(
                f"float operand in integer-only op")
        return expr

    # ------------------------------------------------------------------
    # Memory operations.
    # ------------------------------------------------------------------
    def _bounds_check(self, nbytes: int) -> str:
        return (f"if (_ad < {Memory.GUARD} || _ad > ctx->mem_size - {nbytes}) "
                + self._trap(TRAP_OOB, str(nbytes), "_ad"))

    def _load(self, inst: Instruction, ctx: _FunctionContext) -> List[str]:
        ka, addr = self._expr(inst.operands[0], ctx)
        dtype = inst.dest.type
        nbytes = max(1, dtype.size)
        lines = ["{", f"  int64_t _ad = {self._as_int(ka, addr)};",
                 "  " + self._bounds_check(nbytes)]
        if isinstance(dtype, FloatType) and dtype.bits == 32:
            lines.append("  float _lf; memcpy(&_lf, ctx->mem + _ad, 4);")
            lines.append("  " + self._assign(inst, ctx, "f", "((double)_lf)"))
        elif isinstance(dtype, FloatType):
            lines.append("  double _ld; memcpy(&_ld, ctx->mem + _ad, 8);")
            lines.append("  " + self._assign(inst, ctx, "f", "(_ld)"))
        elif isinstance(dtype, (IntType, PointerType)):
            lines.append(f"  uint64_t _lv = 0; "
                         f"memcpy(&_lv, ctx->mem + _ad, {nbytes});")
            lines.append("  " + self._assign(inst, ctx, "i", "((int64_t)_lv)"))
        else:
            raise UnsupportedNativeModule(f"load of unsupported type {dtype}")
        lines.append("}")
        return lines

    def _store(self, inst: Instruction, ctx: _FunctionContext) -> List[str]:
        kv, value = self._expr(inst.operands[0], ctx)
        ka, addr = self._expr(inst.operands[1], ctx)
        stype = inst.operands[0].type
        nbytes = max(1, stype.size)
        lines = ["{", f"  int64_t _ad = {self._as_int(ka, addr)};",
                 "  " + self._bounds_check(nbytes)]
        if isinstance(stype, FloatType) and stype.bits == 32:
            lines.append(f"  float _sf = (float){self._as_double(kv, value)}; "
                         "memcpy(ctx->mem + _ad, &_sf, 4);")
        elif isinstance(stype, FloatType):
            lines.append(f"  double _sd = {self._as_double(kv, value)}; "
                         "memcpy(ctx->mem + _ad, &_sd, 8);")
        else:
            lines.append(f"  uint64_t _sv = (uint64_t){self._as_int(kv, value)}; "
                         f"memcpy(ctx->mem + _ad, &_sv, {nbytes});")
        lines.append("}")
        return lines

    def _alloca(self, inst: Instruction, ctx: _FunctionContext) -> List[str]:
        kn, count = self._expr(inst.operands[0], ctx)
        element = inst.alloc_type or I32
        size, alignment = element.size, element.alignment
        return [
            "{",
            f"  int64_t _cn = {self._as_int(kn, count)};",
            f"  int64_t _nb = (int64_t)((uint64_t){size} * (uint64_t)_cn);",
            "  if (_nb < 4) _nb = 4;",
            f"  int64_t _ad = (ctx->next_free + {alignment - 1}) / "
            f"{alignment} * {alignment};",
            f"  if (_nb > ctx->mem_size || _ad > ctx->mem_size - _nb) "
            + self._trap(TRAP_OOM, "_nb", "_ad"),
            "  ctx->next_free = _ad + _nb;",
            f"  {self._assign(inst, ctx, 'i', '(_ad)')}",
            "}",
        ]

    # ------------------------------------------------------------------
    # Calls and custom ops.
    # ------------------------------------------------------------------
    def _call(self, inst: Instruction, ctx: _FunctionContext) -> List[str]:
        if not self.module.has_function(inst.callee):
            # Lazily erroring, like the interpreter: a module whose bad
            # call is never executed must still run.
            if inst.callee not in self.bad_calls:
                self.bad_calls.append(inst.callee)
            index = self.bad_calls.index(inst.callee)
            return [self._trap(TRAP_BAD_CALL, str(index))]

        callee = self.module.get_function(inst.callee)
        if len(inst.operands) != len(callee.arguments):
            raise UnsupportedNativeModule(
                f"arity mismatch calling {inst.callee}")
        args = []
        for operand, formal in zip(inst.operands, callee.arguments):
            klass, expr = self._expr(operand, ctx)
            formal_class = _type_class(formal.type)
            if formal_class == "f":
                args.append(self._as_double(klass, expr))
            else:
                if klass == "f":
                    # The interpreter stores the raw float in the integer
                    # formal; a C truncation would diverge.
                    raise UnsupportedNativeModule(
                        f"float argument to integer parameter of {inst.callee}")
                args.append(expr)
        callee_index = self._fn_index[inst.callee]
        callee_class = self._return_class(callee)
        call = f"fn_{callee_index}(ctx{''.join(', ' + a for a in args)})"
        if inst.dest is None:
            return ["{", f"  (void){call};",
                    "  if (ctx->status) return 0;", "}"]
        ctype = "double" if callee_class == "f" else "int64_t"
        return [
            "{",
            f"  {ctype} _cv = {call};",
            "  if (ctx->status) return 0;",
            f"  {self._assign(inst, ctx, callee_class, '(_cv)')}",
            "}",
        ]

    def _custom(self, inst: Instruction, ctx: _FunctionContext) -> List[str]:
        name = inst.custom_op
        index = self.custom_index.setdefault(name, len(self.custom_index))
        n = len(inst.operands)
        lines = ["{", f"  int64_t _ci[{max(1, n)}];"]
        if n == 0:
            lines.append("  _ci[0] = 0;")
        for i, operand in enumerate(inst.operands):
            value = self._int_operand(operand, ctx)
            lines.append(f"  _ci[{i}] = {value};")
        lines.append("  int64_t _co = 0;")
        lines.append(f"  if (!ctx->custom || ctx->custom(ctx->custom_handle, "
                     f"{index}, _ci, {n}, &_co) != 0) "
                     + self._trap(TRAP_CUSTOM))
        if inst.dest is not None:
            lines.append(f"  {self._assign(inst, ctx, 'i', '(_co)')}")
        lines.append("}")
        return lines


def render_c_program(module: Module) -> RenderedProgram:
    """Render ``module`` to a C translation unit plus ABI metadata.

    Raises :class:`UnsupportedNativeModule` when the module uses a
    construct that cannot be reproduced bit-exactly; callers fall back to
    the threaded-code engine.
    """
    return _Renderer(module).render()
