"""Threaded-code translation of IR modules.

The functional interpreter (:class:`repro.sim.FunctionalSimulator`) pays a
large constant cost per executed instruction: a long ``if/elif`` chain over
:class:`~repro.ir.Opcode`, an ``isinstance`` chain per operand, and several
profile dictionary updates.  This module removes all of that cost *once, at
translation time*: every basic block is pre-translated into a tuple of
specialized Python closures (classic threaded code).  Operand accessors are
resolved when the closure is built — constants and global addresses are
baked in as Python values, register reads become a single dict index — and
the opcode dispatch disappears entirely because each closure *is* its
opcode's semantics.

Profile accounting is hoisted out of the hot loop: within one basic block
the instruction sequence is static, so the per-visit profile contribution
(instruction count, opcode histogram, loads/stores/branches, call counts)
is a constant computed at translation time.  The engine counts block
*visits* during execution and multiplies the deltas in at call exit, which
reproduces the interpreter's :class:`~repro.sim.functional.ExecutionProfile`
exactly; only taken-branch counts are data dependent and are recorded at
run time by the branch terminators.

CUSTOM (ISA-extension) operations are bound from the extension library at
translation time: the pattern's ``evaluate`` is captured directly in the
closure.  If a custom op is not registered when translation happens, a lazy
closure is emitted instead that re-checks the library until the op appears
and then caches the resolved pattern for every later execution, matching
the interpreter's late-binding behaviour without paying the registry probe
per instruction.

The translated program is an immutable snapshot: it captures values (not
live IR nodes) wherever later passes could mutate the module, so a cached
:class:`TranslatedProgram` stays valid even if its source module is
rewritten afterwards (the rewrite changes the module's fingerprint and
therefore misses the code cache).
"""

from __future__ import annotations

import operator
import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir import (
    Argument, Constant, Function, GlobalVariable, Instruction, IntType, Module,
    Opcode, PointerType, UndefValue, VirtualRegister,
)
from ..ir.types import FloatType, I32, Type
from ..sim.functional import SimulationError
from ..sim.memory import Memory


# ----------------------------------------------------------------------
# Operand accessors.
# ----------------------------------------------------------------------

#: accessor kinds: ('k', value) for translation-time constants,
#: ('r', reg_id) for register reads.
_Access = Tuple[str, object]


def _wrap_fn(type_: Type) -> Callable:
    """A wrap function matching :func:`repro.sim.functional._wrap` for ``type_``."""
    if isinstance(type_, IntType):
        # Inlined IntType.wrap(int(value)): the int() coercion matters — the
        # interpreter truncates a float landing in an int destination.
        mask = (1 << type_.bits) - 1
        if type_.signed:
            sign_bit = 1 << (type_.bits - 1)
            excess = 1 << type_.bits
            def wrap_sint(value):
                value = int(value) & mask
                return value - excess if value >= sign_bit else value
            return wrap_sint
        def wrap_uint(value):
            return int(value) & mask
        return wrap_uint
    if isinstance(type_, FloatType):
        if type_.bits == 32:
            def wrap_f32(value):
                return struct.unpack("<f", struct.pack("<f", float(value)))[0]
            return wrap_f32
        return float
    if isinstance(type_, PointerType):
        def wrap_ptr(value):
            return int(value) & 0xFFFFFFFF
        return wrap_ptr
    def wrap_id(value):
        return value
    return wrap_id


def _getter(access: _Access) -> Callable:
    """Turn an accessor descriptor into a callable ``regs -> value``."""
    kind, ref = access
    if kind == "k":
        def get_const(regs, _v=ref):
            return _v
        return get_const
    def get_reg(regs, _i=ref):
        return regs[_i]
    return get_reg


# ----------------------------------------------------------------------
# Opcode semantics, expressed as plain binary/unary Python functions that
# mirror FunctionalSimulator._execute case by case.
# ----------------------------------------------------------------------

def _div(a, b):
    if b == 0:
        raise SimulationError("integer division by zero")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _rem(a, b):
    if b == 0:
        raise SimulationError("integer remainder by zero")
    quotient = abs(a) // abs(b)
    signed_q = quotient if (a >= 0) == (b >= 0) else -quotient
    return a - signed_q * b


def _fdiv(a, b):
    if b == 0:
        raise SimulationError("floating division by zero")
    return a / b


_BINARY_SEMANTICS: Dict[Opcode, Callable] = {
    Opcode.ADD: operator.add,
    Opcode.SUB: operator.sub,
    Opcode.MUL: operator.mul,
    Opcode.DIV: _div,
    Opcode.REM: _rem,
    Opcode.AND: operator.and_,
    Opcode.OR: operator.or_,
    Opcode.XOR: operator.xor,
    Opcode.SHL: lambda a, b: a << (b & 31),
    Opcode.SHR: lambda a, b: (a & 0xFFFFFFFF) >> (b & 31),
    Opcode.SAR: lambda a, b: a >> (b & 31),
    Opcode.MIN: lambda a, b: min(a, b),
    Opcode.MAX: lambda a, b: max(a, b),
    Opcode.FADD: operator.add,
    Opcode.FSUB: operator.sub,
    Opcode.FMUL: operator.mul,
    Opcode.FDIV: _fdiv,
    Opcode.CMPEQ: lambda a, b: int(a == b),
    Opcode.FCMPEQ: lambda a, b: int(a == b),
    Opcode.CMPNE: lambda a, b: int(a != b),
    Opcode.CMPLT: lambda a, b: int(a < b),
    Opcode.FCMPLT: lambda a, b: int(a < b),
    Opcode.CMPLE: lambda a, b: int(a <= b),
    Opcode.FCMPLE: lambda a, b: int(a <= b),
    Opcode.CMPGT: lambda a, b: int(a > b),
    Opcode.CMPGE: lambda a, b: int(a >= b),
}

_UNARY_SEMANTICS: Dict[Opcode, Callable] = {
    Opcode.MOV: lambda a: a,
    Opcode.ABS: abs,
    Opcode.NEG: operator.neg,
    Opcode.NOT: operator.invert,
    Opcode.FNEG: operator.neg,
    Opcode.SEXT: lambda a: a,
    Opcode.ZEXT: lambda a: a,
    Opcode.TRUNC: lambda a: a,
    Opcode.ITOF: float,
    Opcode.FTOI: int,
}


# ----------------------------------------------------------------------
# Translated containers.
# ----------------------------------------------------------------------

class TranslatedBlock:
    """One basic block as threaded code plus its static profile delta."""

    __slots__ = ("name", "ops", "terminator", "n_steps", "opcode_delta",
                 "loads", "stores", "branches", "call_delta")

    def __init__(self, name: str) -> None:
        self.name = name
        self.ops: Tuple[Callable, ...] = ()
        self.terminator: Callable = None  # type: ignore[assignment]
        #: instructions executed per visit (including the terminator).
        self.n_steps = 0
        #: opcode histogram contribution per visit.
        self.opcode_delta: Dict[str, int] = {}
        self.loads = 0
        self.stores = 0
        self.branches = 0
        #: static calls issued per visit, keyed by callee name.
        self.call_delta: Dict[str, int] = {}


class TranslatedFunction:
    """A function translated to threaded code."""

    __slots__ = ("name", "arg_ids", "arg_types", "blocks", "source")

    def __init__(self, function: Function) -> None:
        self.name = function.name
        self.arg_ids = tuple(a.id for a in function.arguments)
        self.arg_types = tuple(a.type for a in function.arguments)
        self.blocks: List[TranslatedBlock] = []
        #: source IR function (used only for argument lowering / errors).
        self.source = function


class GlobalSlot:
    """Deterministic load address of one module global."""

    __slots__ = ("name", "address", "value_type", "initializer")

    def __init__(self, name: str, address: int, value_type: Type,
                 initializer) -> None:
        self.name = name
        self.address = address
        self.value_type = value_type
        # Snapshot list initializers so later module mutation cannot leak
        # into a cached program.
        self.initializer = (list(initializer)
                            if isinstance(initializer, (list, tuple))
                            else initializer)


class TranslatedProgram:
    """An immutable compiled snapshot of one module."""

    __slots__ = ("module_name", "functions", "globals_layout", "data_break",
                 "fingerprint", "static_instructions")

    def __init__(self, module_name: str) -> None:
        self.module_name = module_name
        self.functions: Dict[str, TranslatedFunction] = {}
        self.globals_layout: List[GlobalSlot] = []
        #: first free memory address after the globals are loaded.
        self.data_break = Memory.GUARD
        self.fingerprint: Optional[str] = None
        self.static_instructions = 0


# ----------------------------------------------------------------------
# The translator.
# ----------------------------------------------------------------------

class ModuleTranslator:
    """Translates one module; use :func:`translate_module` for the one-shot API."""

    def __init__(self, module: Module, library=None) -> None:
        from ..core.library import global_extension_library

        self.module = module
        self.library = library if library is not None else global_extension_library()
        self.program = TranslatedProgram(module.name)

    # ------------------------------------------------------------------
    def translate(self) -> TranslatedProgram:
        self._layout_globals()
        # Two passes so CALL closures can capture callee TranslatedFunctions
        # even for mutual recursion.
        for function in self.module.functions.values():
            self.program.functions[function.name] = TranslatedFunction(function)
        for function in self.module.functions.values():
            self._translate_function(function)
        return self.program

    # ------------------------------------------------------------------
    def _layout_globals(self) -> None:
        """Replicate ProgramImage's deterministic bump allocation."""
        cursor = Memory.GUARD
        for name, gvar in self.module.globals.items():
            vtype = gvar.value_type
            alignment = vtype.alignment
            nbytes = max(4, vtype.size)
            address = (cursor + alignment - 1) // alignment * alignment
            cursor = address + nbytes
            self.program.globals_layout.append(
                GlobalSlot(name, address, vtype, gvar.initializer))
        self.program.data_break = cursor
        self._global_addresses = {slot.name: slot.address
                                  for slot in self.program.globals_layout}

    # ------------------------------------------------------------------
    def _access(self, operand) -> _Access:
        """Resolve an operand to a translation-time accessor."""
        if isinstance(operand, Constant):
            return ("k", operand.value)
        if isinstance(operand, GlobalVariable):
            try:
                return ("k", self._global_addresses[operand.name])
            except KeyError:
                raise SimulationError(
                    f"global {operand.name} has no address") from None
        if isinstance(operand, UndefValue):
            return ("k", 0)
        if isinstance(operand, (VirtualRegister, Argument)):
            return ("r", operand.id)
        raise SimulationError(f"cannot evaluate operand {operand!r}")

    # ------------------------------------------------------------------
    def _translate_function(self, function: Function) -> None:
        translated = self.program.functions[function.name]
        index_of = {id(block): i for i, block in enumerate(function.blocks)}
        for block in function.blocks:
            tblock = TranslatedBlock(block.name)
            ops: List[Callable] = []
            for inst in block.instructions:
                tblock.n_steps += 1
                key = inst.opcode.value
                tblock.opcode_delta[key] = tblock.opcode_delta.get(key, 0) + 1
                if inst.is_terminator():
                    tblock.terminator = self._translate_terminator(
                        inst, index_of, function, block)
                    if inst.opcode is Opcode.BRANCH:
                        tblock.branches += 1
                    break
                ops.append(self._translate_instruction(inst, tblock))
            else:
                # No terminator: fail at run time exactly like the interpreter.
                block_name, function_name = block.name, function.name
                def fall_off(regs, ctx, _b=block_name, _f=function_name):
                    raise SimulationError(
                        f"fell off the end of block {_b} in {_f}")
                tblock.terminator = fall_off
            tblock.ops = tuple(ops)
            self.program.static_instructions += tblock.n_steps
            translated.blocks.append(tblock)

    # ------------------------------------------------------------------
    def _translate_terminator(self, inst: Instruction, index_of,
                              function: Function, block) -> Callable:
        op = inst.opcode
        if op is Opcode.JUMP:
            target = index_of[id(inst.targets[0])]
            def do_jump(regs, ctx, _t=target):
                return _t
            return do_jump
        if op is Opcode.BRANCH:
            t_index = index_of[id(inst.targets[0])]
            f_index = index_of[id(inst.targets[1])]
            kind, ref = self._access(inst.operands[0])
            if kind == "r":
                def do_branch(regs, ctx, _c=ref, _t=t_index, _f=f_index):
                    if regs[_c]:
                        ctx.profile.taken_branches += 1
                        return _t
                    return _f
                return do_branch
            taken = bool(ref)
            target = t_index if taken else f_index
            def do_const_branch(regs, ctx, _taken=taken, _t=target):
                if _taken:
                    ctx.profile.taken_branches += 1
                return _t
            return do_const_branch
        if op is Opcode.RETURN:
            if inst.operands:
                get = _getter(self._access(inst.operands[0]))
                def do_return(regs, ctx, _g=get):
                    ctx._retval = _g(regs)
                    return None
                return do_return
            def do_return_void(regs, ctx):
                ctx._retval = None
                return None
            return do_return_void
        raise SimulationError(f"unexpected terminator {op}")  # pragma: no cover

    # ------------------------------------------------------------------
    def _translate_instruction(self, inst: Instruction,
                               tblock: TranslatedBlock) -> Callable:
        op = inst.opcode

        if op in _BINARY_SEMANTICS:
            return self._build_binary(inst, _BINARY_SEMANTICS[op])
        if op in _UNARY_SEMANTICS:
            return self._build_unary(inst, _UNARY_SEMANTICS[op])

        if op is Opcode.SELECT:
            get_c = _getter(self._access(inst.operands[0]))
            get_t = _getter(self._access(inst.operands[1]))
            get_f = _getter(self._access(inst.operands[2]))
            dest = inst.dest.id
            wrap = _wrap_fn(inst.dest.type)
            def do_select(regs, ctx, _c=get_c, _t=get_t, _f=get_f,
                          _d=dest, _w=wrap):
                regs[_d] = _w(_t(regs) if _c(regs) else _f(regs))
            return do_select

        if op is Opcode.LOAD:
            tblock.loads += 1
            dest = inst.dest.id
            dtype = inst.dest.type
            wrap = _wrap_fn(dtype)
            kind, ref = self._access(inst.operands[0])
            if kind == "r":
                def do_load(regs, ctx, _a=ref, _d=dest, _t=dtype, _w=wrap):
                    regs[_d] = _w(ctx.memory.load(int(regs[_a]), _t))
                return do_load
            address = int(ref)
            def do_load_const(regs, ctx, _a=address, _d=dest, _t=dtype, _w=wrap):
                regs[_d] = _w(ctx.memory.load(_a, _t))
            return do_load_const

        if op is Opcode.STORE:
            tblock.stores += 1
            get_value = _getter(self._access(inst.operands[0]))
            stype = inst.operands[0].type
            kind, ref = self._access(inst.operands[1])
            if kind == "r":
                def do_store(regs, ctx, _v=get_value, _a=ref, _t=stype):
                    ctx.memory.store(int(regs[_a]), _v(regs), _t)
                return do_store
            address = int(ref)
            def do_store_const(regs, ctx, _v=get_value, _a=address, _t=stype):
                ctx.memory.store(_a, _v(regs), _t)
            return do_store_const

        if op is Opcode.ALLOCA:
            get_count = _getter(self._access(inst.operands[0]))
            element = inst.alloc_type or I32
            size, alignment = element.size, element.alignment
            dest = inst.dest.id
            wrap = _wrap_fn(inst.dest.type)
            def do_alloca(regs, ctx, _n=get_count, _s=size, _al=alignment,
                          _d=dest, _w=wrap):
                regs[_d] = _w(ctx.memory.allocate(max(4, _s * int(_n(regs))), _al))
            return do_alloca

        if op is Opcode.CALL:
            tblock.call_delta[inst.callee] = (
                tblock.call_delta.get(inst.callee, 0) + 1)
            return self._build_call(inst)

        if op is Opcode.CUSTOM:
            return self._build_custom(inst)

        raise SimulationError(f"unimplemented opcode {op}")  # pragma: no cover

    # ------------------------------------------------------------------
    def _build_binary(self, inst: Instruction, fn: Callable) -> Callable:
        (ak, av) = self._access(inst.operands[0])
        (bk, bv) = self._access(inst.operands[1])
        dest = inst.dest.id
        wrap = _wrap_fn(inst.dest.type)
        # Specialize the four operand-kind combinations so the hot path is a
        # closure call plus dict indexing — no accessor indirection.
        if ak == "r" and bk == "r":
            def op_rr(regs, ctx, _a=av, _b=bv, _d=dest, _fn=fn, _w=wrap):
                regs[_d] = _w(_fn(regs[_a], regs[_b]))
            return op_rr
        if ak == "r":
            def op_rk(regs, ctx, _a=av, _b=bv, _d=dest, _fn=fn, _w=wrap):
                regs[_d] = _w(_fn(regs[_a], _b))
            return op_rk
        if bk == "r":
            def op_kr(regs, ctx, _a=av, _b=bv, _d=dest, _fn=fn, _w=wrap):
                regs[_d] = _w(_fn(_a, regs[_b]))
            return op_kr
        def op_kk(regs, ctx, _a=av, _b=bv, _d=dest, _fn=fn, _w=wrap):
            regs[_d] = _w(_fn(_a, _b))
        return op_kk

    def _build_unary(self, inst: Instruction, fn: Callable) -> Callable:
        kind, ref = self._access(inst.operands[0])
        dest = inst.dest.id
        wrap = _wrap_fn(inst.dest.type)
        if kind == "r":
            def op_r(regs, ctx, _a=ref, _d=dest, _fn=fn, _w=wrap):
                regs[_d] = _w(_fn(regs[_a]))
            return op_r
        def op_k(regs, ctx, _a=ref, _d=dest, _fn=fn, _w=wrap):
            regs[_d] = _w(_fn(_a))
        return op_k

    def _build_call(self, inst: Instruction) -> Callable:
        getters = tuple(_getter(self._access(a)) for a in inst.operands)
        if self.module.has_function(inst.callee):
            callee = self.program.functions[inst.callee]
        else:
            # Mirror Module.get_function's failure, but lazily: a module
            # whose bad call is never executed must still run.
            name, module_name = inst.callee, self.module.name
            def do_bad_call(regs, ctx, _n=name, _m=module_name):
                raise SimulationError(f"no function named {_n} in module {_m}")
            return do_bad_call
        if inst.dest is not None:
            dest = inst.dest.id
            wrap = _wrap_fn(inst.dest.type)
            def do_call(regs, ctx, _g=getters, _f=callee, _d=dest, _w=wrap):
                result = ctx._call(_f, [get(regs) for get in _g])
                regs[_d] = _w(result if result is not None else 0)
            return do_call
        def do_void_call(regs, ctx, _g=getters, _f=callee):
            ctx._call(_f, [get(regs) for get in _g])
        return do_void_call

    def _build_custom(self, inst: Instruction) -> Callable:
        getters = tuple(_getter(self._access(a)) for a in inst.operands)
        name = inst.custom_op
        pattern = self.library.lookup(name)
        dest = inst.dest.id if inst.dest is not None else None
        wrap = _wrap_fn(inst.dest.type) if inst.dest is not None else None
        if pattern is not None:
            evaluate = pattern.evaluate
            if dest is not None:
                def do_custom(regs, ctx, _g=getters, _e=evaluate, _d=dest,
                              _w=wrap, _n=name):
                    inputs = [get(regs) for get in _g]
                    # A KeyError escaping evaluate() must not be mistaken for
                    # an undefined-register read by the engine's run loop.
                    try:
                        result = _e(inputs)
                    except KeyError as exc:
                        raise SimulationError(
                            f"custom op {_n} raised KeyError: {exc}") from exc
                    regs[_d] = _w(result)
                return do_custom
            def do_void_custom(regs, ctx, _g=getters, _e=evaluate, _n=name):
                inputs = [get(regs) for get in _g]
                try:
                    _e(inputs)
                except KeyError as exc:
                    raise SimulationError(
                        f"custom op {_n} raised KeyError: {exc}") from exc
            return do_void_custom

        # Late binding: the op may be registered between translation and run.
        # The library lookup is cached in a cell after the first successful
        # resolution, so the registry dict is not re-probed on every
        # execution of a hot op (an unregistered op keeps re-checking, since
        # registration can still happen later).
        cell: List = [None]

        def do_lazy_custom(regs, ctx, _g=getters, _n=name, _d=dest, _w=wrap,
                           _cell=cell):
            bound = _cell[0]
            if bound is None:
                from ..core.library import global_extension_library

                bound = global_extension_library().lookup(_n)
                if bound is None:
                    raise SimulationError(
                        f"custom op {_n} has no registered semantics")
                _cell[0] = bound
            inputs = [get(regs) for get in _g]
            try:
                result = bound.evaluate(inputs)
            except KeyError as exc:
                raise SimulationError(
                    f"custom op {_n} raised KeyError: {exc}") from exc
            if _d is not None:
                regs[_d] = _w(result)
        return do_lazy_custom


def translate_module(module: Module, library=None) -> TranslatedProgram:
    """Translate ``module`` into threaded code.

    ``library`` defaults to the process-wide extension library; it supplies
    the semantics of CUSTOM operations, bound at translation time.
    """
    return ModuleTranslator(module, library=library).translate()
