"""NumPy-vectorized lockstep interpreter for batch workloads.

The native engine needs a C compiler; this module is the batch fast path
that works everywhere NumPy does.  :class:`VectorizedSimulator` executes
*one kernel across many argument sets at once*: every virtual register
becomes a NumPy array with one lane per argument set, simulated memory
becomes an ``(n_lanes, size)`` byte matrix, and each IR instruction is
evaluated once per *batch* instead of once per run.  Lanes that diverge
in control flow are regrouped per basic block (classic SIMT reconvergence
by minimum block index), so data-dependent branching stays correct at
reduced — never wrong — efficiency.

Like the threaded-code translator, all per-instruction decisions are made
once up front: each instruction becomes a specialized closure over
pre-resolved operand accessors.  Registers are stored in the NumPy dtype
matching their IR type (``i32`` → ``int32``, pointers → ``uint32``, …),
so C-like wraparound arithmetic needs *no* explicit masking on the hot
path — NumPy's fixed-width integers reproduce the interpreter's
wrap-on-destination-write semantics by construction, and a trailing
``astype`` covers the cross-width cases.

Semantics mirror :class:`repro.sim.FunctionalSimulator` per lane on
successful runs: same return values, memory write-backs and
:class:`ExecutionProfile` counters.  Deliberate divergences, shared with
the generated-C engine and only reachable through already-failing or
ill-typed programs: lanes read registers as 0 before any write instead
of raising, a fault in *any* lane (division by zero, out-of-range
access, step-limit overrun) aborts the whole batch with the
interpreter's exception for the first faulting lane, and values passed
to a narrower formal are wrapped at the call boundary.

:func:`run_batch` is the engine cascade used by the service and the CLI:
``native`` (one JIT-compiled run per set) → ``vector`` (this module) →
``compiled`` (threaded code, always available).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

try:  # NumPy is optional: hosts without it still get the compiled tier.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on compiler-less CI
    _np = None

from ..ir import (
    Argument, Constant, Function, GlobalVariable, Instruction, IntType, Module,
    Opcode, PointerType, UndefValue, VirtualRegister,
)
from ..ir.types import FloatType, I32, Type
from ..sim.functional import ExecutionProfile, SimulationError, _wrap
from ..sim.memory import Memory, MemoryError_, ProgramImage


def numpy_available() -> bool:
    """True when the vectorized batch engine can run."""
    return _np is not None


# ----------------------------------------------------------------------
# Register domains: the NumPy dtype a register of a given type lives in.
# ----------------------------------------------------------------------

def _domain(type_: Type):
    if isinstance(type_, IntType):
        if type_.bits <= 8:
            return _np.int8 if type_.signed else _np.uint8
        if type_.bits <= 16:
            return _np.int16 if type_.signed else _np.uint16
        if type_.bits <= 32:
            return _np.int32 if type_.signed else _np.uint32
        return _np.int64 if type_.signed else _np.uint64
    if isinstance(type_, FloatType):
        return _np.float64
    if isinstance(type_, PointerType):
        return _np.uint32
    return _np.int64


def _make_wrap(type_: Type) -> Callable:
    """Array wrap matching :func:`repro.sim.functional._wrap` for ``type_``.

    Where the register domain already *is* the wrapped domain (full-width
    integers, pointers, f64) this is a dtype coercion at most; sub-width
    integers (``u1``) additionally mask.
    """
    domain = _domain(type_)
    if isinstance(type_, IntType) and type_.bits not in (8, 16, 32, 64):
        mask = _np.int64((1 << type_.bits) - 1)
        if type_.signed:
            half = _np.int64(1 << (type_.bits - 1))
            excess = _np.int64(1 << type_.bits)

            def wrap_narrow_signed(values):
                masked = values.astype(_np.int64) & mask
                return _np.where(masked >= half, masked - excess,
                                 masked).astype(domain)
            return wrap_narrow_signed

        def wrap_narrow(values):
            return (values.astype(_np.int64) & mask).astype(domain)
        return wrap_narrow
    if isinstance(type_, FloatType) and type_.bits == 32:
        def wrap_f32(values):
            return values.astype(_np.float32).astype(_np.float64)
        return wrap_f32

    def wrap_domain(values):
        if values.dtype == domain:
            return values
        return values.astype(domain)  # C cast == wrap-on-write
    return wrap_domain


def _const_scalar(value):
    """A dtype-pinned NumPy scalar for a raw IR constant."""
    if isinstance(value, float):
        return _np.float64(value)
    value = int(value)
    if -(1 << 31) <= value < (1 << 31):
        return _np.int32(value)
    if -(1 << 63) <= value < (1 << 63):
        return _np.int64(value)
    # Beyond int64: two's-complement view (congruent mod 2**64 for all
    # ring operations, which is all the frontend emits at this width).
    value &= (1 << 64) - 1
    return _np.int64(value - (1 << 64) if value >= (1 << 63) else value)


# ----------------------------------------------------------------------
# Static per-block info (profile deltas, mirroring the translator's).
# ----------------------------------------------------------------------

class _VecBlock:
    __slots__ = ("name", "index", "ops", "terminator", "n_steps",
                 "opcode_delta", "loads", "stores", "branches", "call_delta")

    def __init__(self, name: str, index: int) -> None:
        self.name = name
        self.index = index
        self.ops: Tuple[Callable, ...] = ()
        #: ("jump", t) | ("branch", get, t, f) | ("ret", get_or_None)
        #: | ("off", block, function)
        self.terminator: Tuple = ()
        self.n_steps = 0
        self.opcode_delta: Dict[str, int] = {}
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.call_delta: Dict[str, int] = {}


class _VecFunction:
    __slots__ = ("name", "function", "blocks", "ret_dtype")

    def __init__(self, function: Function) -> None:
        self.name = function.name
        self.function = function
        self.blocks: List[_VecBlock] = []
        self.ret_dtype = None


# ----------------------------------------------------------------------
# The simulator.
# ----------------------------------------------------------------------

class VectorizedSimulator:
    """Executes one module over ``n_lanes`` argument sets in lockstep."""

    def __init__(self, module: Module, n_lanes: int,
                 memory_size: int = 1 << 20,
                 max_steps: int = 50_000_000) -> None:
        if _np is None:
            raise RuntimeError("the vectorized engine requires numpy")
        if n_lanes < 1:
            raise ValueError("n_lanes must be >= 1")
        self.module = module
        self.n_lanes = n_lanes
        self.size = memory_size
        self.max_steps = max_steps

        template = ProgramImage(module, Memory(memory_size))
        # Only the globals prefix of the template image is non-zero, so a
        # lazily-zeroed matrix plus a prefix broadcast beats tiling the
        # whole per-lane memory (which is megabytes of zeros).
        init_end = template.memory._next_free
        self.mem = _np.zeros((n_lanes, memory_size), dtype=_np.uint8)
        self.mem[:, :init_end] = _np.frombuffer(
            bytes(template.memory.data[:init_end]), dtype=_np.uint8)
        self.next_free = _np.full(n_lanes, init_end, dtype=_np.int64)
        self.steps = _np.zeros(n_lanes, dtype=_np.int64)
        self.taken = _np.zeros(n_lanes, dtype=_np.int64)
        self._patterns: Dict[str, object] = {}
        self.profiles: List[ExecutionProfile] = []

        self._functions: Dict[str, _VecFunction] = {}
        for name, function in module.functions.items():
            self._functions[name] = _VecFunction(function)
        for name, function in module.functions.items():
            self._translate(self._functions[name])
        self._visits = {name: _np.zeros((len(vf.blocks), n_lanes),
                                        dtype=_np.int64)
                        for name, vf in self._functions.items()}

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def run_many(self, function_name: str, arg_sets: Sequence[Sequence],
                 copy_back: bool = True) -> List:
        """Execute ``function_name`` once per lane; returns per-lane values.

        ``arg_sets`` has one argument tuple per lane (same arity; list
        arguments may differ in length per lane).  List write-backs and
        the per-lane :attr:`profiles` mirror running the interpreter
        once per set.
        """
        if len(arg_sets) != self.n_lanes:
            raise SimulationError(
                f"expected {self.n_lanes} argument sets, got {len(arg_sets)}")
        function = self.module.get_function(function_name)
        n_formals = len(function.arguments)
        for arg_set in arg_sets:
            if len(arg_set) != n_formals:
                raise SimulationError(
                    f"{function_name} expects {n_formals} arguments, "
                    f"got {len(arg_set)}")

        lowered: List = []
        writebacks = []
        for j, formal in enumerate(function.arguments):
            actuals = [arg_set[j] for arg_set in arg_sets]
            if any(isinstance(a, (list, tuple)) for a in actuals):
                element = I32
                if (isinstance(formal.type, PointerType)
                        and formal.type.pointee is not None):
                    element = formal.type.pointee
                addresses = _np.zeros(self.n_lanes, dtype=_np.uint32)
                for lane, actual in enumerate(actuals):
                    values = list(actual)
                    address = self._allocate_lane(
                        lane, max(4, element.size * len(values)),
                        element.alignment)
                    self._write_lane_array(lane, address, values, element)
                    addresses[lane] = address
                    if copy_back and isinstance(actual, list):
                        writebacks.append((lane, actual, address,
                                           len(values), element))
                lowered.append(addresses)
            else:
                scalars = [_wrap(a, formal.type) for a in actuals]
                lowered.append(_np.array(scalars,
                                         dtype=_domain(formal.type)))

        lanes = _np.arange(self.n_lanes, dtype=_np.int64)
        values = self._call(self._functions[function.name], lanes, lowered)

        for lane, target, address, count, element in writebacks:
            target[:] = self._read_lane_array(lane, address, count, element)
        self.profiles = self._build_profiles()
        if values is None:
            return [None] * self.n_lanes
        if values.dtype.kind == "f":
            return [float(v) for v in values]
        return [int(v) for v in values]

    # ------------------------------------------------------------------
    # Per-lane memory helpers (argument lowering / write-back).
    # ------------------------------------------------------------------
    def _allocate_lane(self, lane: int, nbytes: int, alignment: int) -> int:
        address = int((self.next_free[lane] + alignment - 1)
                      // alignment * alignment)
        if address + nbytes > self.size:
            raise MemoryError_(
                f"out of simulated memory: need {nbytes} bytes at {address}")
        self.next_free[lane] = address + nbytes
        return address

    def _lane_memory(self, lane: int) -> Memory:
        scratch = Memory.__new__(Memory)
        scratch.size = self.size
        scratch.data = memoryview(self.mem[lane])
        scratch._next_free = int(self.next_free[lane])
        return scratch

    def _write_lane_array(self, lane: int, address: int, values: Sequence,
                          element: Type) -> None:
        self._lane_memory(lane).write_array(address, values, element)

    def _read_lane_array(self, lane: int, address: int, count: int,
                         element: Type) -> List:
        return self._lane_memory(lane).read_array(address, count, element)

    # ------------------------------------------------------------------
    # Execution core: per-block closure scheduling with reconvergence.
    # ------------------------------------------------------------------
    def _call(self, vf: _VecFunction, lanes, args):
        """Run ``vf`` on the lane subset ``lanes`` (global lane indices).

        ``args`` are arrays of ``len(lanes)``; returns an array of the
        same length, or ``None`` for void returns.
        """
        if not vf.blocks:
            raise SimulationError(f"function {vf.name} has no entry block")
        width = len(lanes)
        regs: Dict[int, object] = {}
        for formal, actual in zip(vf.function.arguments, args):
            domain = _domain(formal.type)
            array = _np.asarray(actual)
            regs[formal.id] = (array.astype(domain)
                               if array.dtype != domain else array)
        retvals = None
        visits = self._visits[vf.name]
        blocks = vf.blocks
        steps = self.steps
        max_steps = self.max_steps

        # Converged mode: every live lane is in the same block, closures
        # see idx=None and operate on whole register arrays.
        current_block = 0
        current = None   # per-lane block indices once diverged
        alive = None     # per-lane liveness once diverged

        while True:
            if current is None:
                b = current_block
                idx = None
                glanes = lanes
            else:
                live = current[alive]
                if live.size == 0:
                    break
                b = int(live.min())
                sel = alive & (current == b)
                idx = _np.nonzero(sel)[0]
                glanes = lanes[idx]
                if idx.size == width:
                    idx = None
                    glanes = lanes
            block = blocks[b]

            visits[b, glanes] += 1
            steps[glanes] += block.n_steps
            if int(steps[glanes].max()) > max_steps:
                raise SimulationError("maximum step count exceeded")

            for op in block.ops:
                op(regs, idx, glanes, width)

            kind = block.terminator[0]
            if kind == "jump":
                target = block.terminator[1]
                if current is None:
                    current_block = target
                else:
                    current[idx if idx is not None else slice(None)] = target
            elif kind == "branch":
                _kind, get, t_index, f_index = block.terminator
                cond = get(regs, idx)
                if cond.ndim == 0:
                    taken_all = bool(cond)
                    if taken_all:
                        self.taken[glanes] += 1
                    target = t_index if taken_all else f_index
                    if current is None:
                        current_block = target
                    else:
                        current[idx if idx is not None
                                else slice(None)] = target
                else:
                    taken = cond != 0
                    self.taken[glanes[taken]] += 1
                    if current is None:
                        if taken.all():
                            current_block = t_index
                        elif not taken.any():
                            current_block = f_index
                        else:  # diverge
                            current = _np.where(taken, t_index, f_index)
                            alive = _np.ones(width, dtype=bool)
                    else:
                        where = idx if idx is not None else slice(None)
                        current[where] = _np.where(taken, t_index, f_index)
            elif kind == "ret":
                get = block.terminator[1]
                if get is not None:
                    value = get(regs, idx)
                    if retvals is None:
                        retvals = _np.zeros(width, dtype=vf.ret_dtype)
                    where = idx if idx is not None else slice(None)
                    retvals[where] = value
                if current is None:
                    break  # all lanes returned together
                alive[idx if idx is not None else slice(None)] = False
            else:  # "off": no terminator — fail like the interpreter
                raise SimulationError(
                    f"fell off the end of block {block.terminator[1]} "
                    f"in {block.terminator[2]}")
        return retvals

    # ------------------------------------------------------------------
    # Translation: one specialized closure per instruction.
    # ------------------------------------------------------------------
    def _translate(self, vf: _VecFunction) -> None:
        function = vf.function
        index_of = {id(b): i for i, b in enumerate(function.blocks)}
        ret_dtypes = []
        for i, block in enumerate(function.blocks):
            vb = _VecBlock(block.name, i)
            ops: List[Callable] = []
            for inst in block.instructions:
                vb.n_steps += 1
                key = inst.opcode.value
                vb.opcode_delta[key] = vb.opcode_delta.get(key, 0) + 1
                if inst.is_terminator():
                    vb.terminator = self._translate_terminator(
                        inst, index_of, ret_dtypes)
                    if inst.opcode is Opcode.BRANCH:
                        vb.branches += 1
                    break
                ops.append(self._translate_instruction(inst, vb))
            else:
                vb.terminator = ("off", block.name, function.name)
            vb.ops = tuple(ops)
            vf.blocks.append(vb)
        if ret_dtypes:
            dtype = ret_dtypes[0]
            for other in ret_dtypes[1:]:
                dtype = _np.promote_types(dtype, other)
            vf.ret_dtype = dtype

    def _access(self, operand):
        """('k', numpy scalar) or ('r', register id)."""
        if isinstance(operand, Constant):
            return ("k", _const_scalar(operand.value))
        if isinstance(operand, GlobalVariable):
            if operand.address is None:
                raise SimulationError(
                    f"global {operand.name} has no address")
            return ("k", _np.uint32(operand.address))
        if isinstance(operand, UndefValue):
            return ("k", _np.int32(0))
        if isinstance(operand, (VirtualRegister, Argument)):
            return ("r", operand.id)
        raise SimulationError(f"cannot evaluate operand {operand!r}")

    def _getter(self, operand) -> Callable:
        kind, ref = self._access(operand)
        if kind == "k":
            def get_const(regs, idx, _v=ref):
                return _v
            return get_const

        def get_reg(regs, idx, _i=ref):
            array = regs.get(_i)
            if array is None:
                # Zero before first write (documented divergence from the
                # interpreter's undefined-register error).
                return _np.int32(0)
            return array if idx is None else array[idx]
        return get_reg

    @staticmethod
    def _putter(inst: Instruction) -> Callable:
        dest = inst.dest.id
        wrap = _make_wrap(inst.dest.type)
        domain = _domain(inst.dest.type)

        def put(regs, idx, values, width, _d=dest, _w=wrap, _D=domain):
            if values.ndim == 0:
                if idx is None:
                    regs[_d] = _np.full(width, values, dtype=_D)
                    return
                out = values
            else:
                out = _w(values)
            if idx is None:
                regs[_d] = out
                return
            existing = regs.get(_d)
            if existing is None:
                existing = regs[_d] = _np.zeros(width, dtype=_D)
            existing[idx] = out
        return put

    # ------------------------------------------------------------------
    def _translate_terminator(self, inst: Instruction, index_of,
                              ret_dtypes) -> Tuple:
        op = inst.opcode
        if op is Opcode.JUMP:
            return ("jump", index_of[id(inst.targets[0])])
        if op is Opcode.BRANCH:
            return ("branch", self._getter(inst.operands[0]),
                    index_of[id(inst.targets[0])],
                    index_of[id(inst.targets[1])])
        if op is Opcode.RETURN:
            if inst.operands:
                operand = inst.operands[0]
                if isinstance(operand, Constant):
                    ret_dtypes.append(_np.asarray(
                        _const_scalar(operand.value)).dtype)
                elif isinstance(operand, (VirtualRegister, Argument)):
                    ret_dtypes.append(_np.dtype(_domain(operand.type)))
                else:
                    ret_dtypes.append(_np.dtype(_np.int64))
                return ("ret", self._getter(operand))
            return ("ret", None)
        raise SimulationError(f"unexpected terminator {op}")

    # ------------------------------------------------------------------
    _BINARY = {
        Opcode.ADD: lambda a, b: a + b,
        Opcode.SUB: lambda a, b: a - b,
        Opcode.MUL: lambda a, b: a * b,
        Opcode.AND: lambda a, b: a & b,
        Opcode.OR: lambda a, b: a | b,
        Opcode.XOR: lambda a, b: a ^ b,
        Opcode.FADD: lambda a, b: a + b,
        Opcode.FSUB: lambda a, b: a - b,
        Opcode.FMUL: lambda a, b: a * b,
    }
    _COMPARE = {
        Opcode.CMPEQ: lambda a, b: a == b, Opcode.FCMPEQ: lambda a, b: a == b,
        Opcode.CMPNE: lambda a, b: a != b,
        Opcode.CMPLT: lambda a, b: a < b, Opcode.FCMPLT: lambda a, b: a < b,
        Opcode.CMPLE: lambda a, b: a <= b, Opcode.FCMPLE: lambda a, b: a <= b,
        Opcode.CMPGT: lambda a, b: a > b,
        Opcode.CMPGE: lambda a, b: a >= b,
    }

    def _translate_instruction(self, inst: Instruction,
                               vb: _VecBlock) -> Callable:
        op = inst.opcode

        if op in self._BINARY:
            return self._build_binary(inst, self._BINARY[op])
        if op in self._COMPARE:
            fn = self._COMPARE[op]
            return self._build_binary(
                inst, lambda a, b, _f=fn: _f(a, b).astype(_np.int64))
        if op is Opcode.SHL:
            return self._build_shift(inst, lambda a, s: a << s)
        if op is Opcode.SAR:
            return self._build_shift(inst, lambda a, s: a >> s)
        if op is Opcode.SHR:
            mask32 = _np.int64(0xFFFFFFFF)
            return self._build_shift(
                inst, lambda a, s: (a.astype(_np.int64) & mask32) >> s
                if isinstance(a, _np.ndarray)
                else (_np.int64(a) & mask32) >> s)
        if op is Opcode.MIN:
            return self._build_binary(
                inst, lambda a, b: _np.where(b < a, b, a))
        if op is Opcode.MAX:
            return self._build_binary(
                inst, lambda a, b: _np.where(b > a, b, a))
        if op is Opcode.DIV or op is Opcode.REM:
            return self._build_division(inst, op is Opcode.REM)
        if op is Opcode.FDIV:
            return self._build_fdiv(inst)

        if op in (Opcode.MOV, Opcode.SEXT, Opcode.ZEXT, Opcode.TRUNC):
            return self._build_unary(inst, None)
        if op is Opcode.ABS:
            return self._build_unary(inst, _np.abs)
        if op is Opcode.NEG or op is Opcode.FNEG:
            return self._build_unary(inst, _np.negative)
        if op is Opcode.NOT:
            return self._build_unary(inst, _np.invert)
        if op is Opcode.ITOF:
            return self._build_unary(
                inst, lambda a: _np.asarray(a).astype(_np.float64))
        if op is Opcode.FTOI:
            return self._build_unary(
                inst, lambda a: _np.asarray(a).astype(_np.int64))

        if op is Opcode.SELECT:
            return self._build_select(inst)
        if op is Opcode.LOAD:
            vb.loads += 1
            return self._build_load(inst)
        if op is Opcode.STORE:
            vb.stores += 1
            return self._build_store(inst)
        if op is Opcode.ALLOCA:
            return self._build_alloca(inst)
        if op is Opcode.CALL:
            vb.call_delta[inst.callee] = vb.call_delta.get(inst.callee, 0) + 1
            return self._build_call(inst)
        if op is Opcode.CUSTOM:
            return self._build_custom(inst)
        raise SimulationError(f"unimplemented opcode {op}")  # pragma: no cover

    # ------------------------------------------------------------------
    def _build_binary(self, inst: Instruction, fn: Callable) -> Callable:
        get_a = self._getter(inst.operands[0])
        get_b = self._getter(inst.operands[1])
        put = self._putter(inst)

        def do_binary(regs, idx, glanes, width, _a=get_a, _b=get_b,
                      _fn=fn, _p=put):
            _p(regs, idx, _np.asarray(_fn(_a(regs, idx), _b(regs, idx))),
               width)
        return do_binary

    def _build_shift(self, inst: Instruction, fn: Callable) -> Callable:
        get_a = self._getter(inst.operands[0])
        put = self._putter(inst)
        operand = inst.operands[1]
        if isinstance(operand, Constant):
            # Pre-mask the constant shift amount.
            shift = _np.int32(int(operand.value) & 31)

            def do_shift_const(regs, idx, glanes, width, _a=get_a,
                               _s=shift, _fn=fn, _p=put):
                _p(regs, idx, _np.asarray(_fn(_a(regs, idx), _s)), width)
            return do_shift_const
        get_b = self._getter(operand)
        mask = _np.int32(31)

        def do_shift(regs, idx, glanes, width, _a=get_a, _b=get_b,
                     _m=mask, _fn=fn, _p=put):
            _p(regs, idx,
               _np.asarray(_fn(_a(regs, idx), _b(regs, idx) & _m)), width)
        return do_shift

    def _build_division(self, inst: Instruction, is_rem: bool) -> Callable:
        get_a = self._getter(inst.operands[0])
        get_b = self._getter(inst.operands[1])
        put = self._putter(inst)
        message = ("integer remainder by zero" if is_rem
                   else "integer division by zero")

        def do_division(regs, idx, glanes, width, _a=get_a, _b=get_b,
                        _p=put, _rem=is_rem, _msg=message):
            # int64 working domain: exact |INT32_MIN|, trunc-toward-zero
            # via the interpreter's abs // abs + sign fixup.
            rhs = _np.asarray(_b(regs, idx)).astype(_np.int64)
            if not rhs.all():
                raise SimulationError(_msg)
            lhs = _np.asarray(_a(regs, idx)).astype(_np.int64)
            quotient = _np.abs(lhs) // _np.abs(rhs)
            signed_q = _np.where((lhs >= 0) == (rhs >= 0),
                                 quotient, -quotient)
            _p(regs, idx, lhs - signed_q * rhs if _rem else signed_q, width)
        return do_division

    def _build_fdiv(self, inst: Instruction) -> Callable:
        get_a = self._getter(inst.operands[0])
        get_b = self._getter(inst.operands[1])
        put = self._putter(inst)

        def do_fdiv(regs, idx, glanes, width, _a=get_a, _b=get_b, _p=put):
            rhs = _np.asarray(_b(regs, idx))
            if not rhs.all():
                raise SimulationError("floating division by zero")
            _p(regs, idx, _np.asarray(_a(regs, idx) / rhs), width)
        return do_fdiv

    def _build_unary(self, inst: Instruction,
                     fn: Optional[Callable]) -> Callable:
        put = self._putter(inst)
        operand = inst.operands[0]
        if isinstance(operand, (Constant, GlobalVariable, UndefValue)):
            _kind, scalar = self._access(operand)
            value = _np.asarray(scalar if fn is None else fn(scalar))

            def do_unary_const(regs, idx, glanes, width, _v=value, _p=put):
                _p(regs, idx, _v, width)
            return do_unary_const
        get = self._getter(operand)
        if fn is None:
            def do_move(regs, idx, glanes, width, _g=get, _p=put):
                value = _np.asarray(_g(regs, idx))
                if idx is None and value.ndim != 0:
                    value = value.copy()  # never alias two registers
                _p(regs, idx, value, width)
            return do_move

        def do_unary(regs, idx, glanes, width, _g=get, _fn=fn, _p=put):
            _p(regs, idx, _np.asarray(_fn(_g(regs, idx))), width)
        return do_unary

    def _build_select(self, inst: Instruction) -> Callable:
        get_c = self._getter(inst.operands[0])
        get_t = self._getter(inst.operands[1])
        get_f = self._getter(inst.operands[2])
        put = self._putter(inst)

        def do_select(regs, idx, glanes, width, _c=get_c, _t=get_t,
                      _f=get_f, _p=put):
            cond = _np.asarray(_c(regs, idx))
            if cond.ndim == 0:
                value = _np.asarray(_t(regs, idx) if cond
                                    else _f(regs, idx))
            else:
                value = _np.where(cond != 0, _t(regs, idx), _f(regs, idx))
            _p(regs, idx, value, width)
        return do_select

    # ------------------------------------------------------------------
    # Memory: single-gather loads, single-scatter stores.
    # ------------------------------------------------------------------
    @staticmethod
    def _element_code(type_: Type) -> str:
        if isinstance(type_, FloatType):
            return "<f4" if type_.bits == 32 else "<f8"
        nbytes = max(1, type_.size)
        if isinstance(type_, IntType) and type_.signed:
            return f"<i{nbytes}"
        return f"<u{nbytes}"

    def _check_addresses(self, addresses, nbytes: int):
        addresses = _np.asarray(addresses).astype(_np.int64)
        bad = (addresses < Memory.GUARD) | (addresses > self.size - nbytes)
        if bad.any():
            first = int(addresses[int(_np.argmax(bad))])
            raise MemoryError_(
                f"access of {nbytes} bytes at {first} is out of range")
        return addresses

    def _build_load(self, inst: Instruction) -> Callable:
        get_addr = self._getter(inst.operands[0])
        put = self._putter(inst)
        nbytes = max(1, inst.dest.type.size)
        code = self._element_code(inst.dest.type)
        offsets = _np.arange(nbytes, dtype=_np.int64)
        is_float = isinstance(inst.dest.type, FloatType)

        def do_load(regs, idx, glanes, width, _a=get_addr, _p=put,
                    _nb=nbytes, _code=code, _off=offsets, _fl=is_float):
            addresses = _np.asarray(_a(regs, idx))
            if addresses.ndim == 0:
                addresses = _np.full(len(glanes), addresses)
            addresses = self._check_addresses(addresses, _nb)
            rows = self.mem[glanes[:, None], addresses[:, None] + _off]
            values = _np.ascontiguousarray(rows).view(_code).ravel()
            if _fl:
                values = values.astype(_np.float64)
            _p(regs, idx, values, width)
        return do_load

    def _build_store(self, inst: Instruction) -> Callable:
        get_value = self._getter(inst.operands[0])
        get_addr = self._getter(inst.operands[1])
        stype = inst.operands[0].type
        nbytes = max(1, stype.size)
        code = self._element_code(stype)
        offsets = _np.arange(nbytes, dtype=_np.int64)

        def do_store(regs, idx, glanes, width, _v=get_value, _a=get_addr,
                     _nb=nbytes, _code=code, _off=offsets):
            n = len(glanes)
            addresses = _np.asarray(_a(regs, idx))
            if addresses.ndim == 0:
                addresses = _np.full(n, addresses)
            addresses = self._check_addresses(addresses, _nb)
            values = _np.asarray(_v(regs, idx))
            if values.ndim == 0:
                values = _np.full(n, values)
            rows = _np.ascontiguousarray(values.astype(_code)) \
                .view(_np.uint8).reshape(n, _nb)
            self.mem[glanes[:, None], addresses[:, None] + _off] = rows
        return do_store

    def _build_alloca(self, inst: Instruction) -> Callable:
        get_count = self._getter(inst.operands[0])
        put = self._putter(inst)
        element = inst.alloc_type or I32
        size, alignment = element.size, element.alignment

        def do_alloca(regs, idx, glanes, width, _n=get_count, _s=size,
                      _al=alignment, _p=put):
            count = _np.asarray(_n(regs, idx)).astype(_np.int64)
            if count.ndim == 0:
                count = _np.full(len(glanes), count)
            nbytes = _np.maximum(4, _np.int64(_s) * count)
            base = self.next_free[glanes]
            addresses = (base + _al - 1) // _al * _al
            bad = addresses + nbytes > self.size
            if bad.any():
                first = int(_np.argmax(bad))
                raise MemoryError_(
                    f"out of simulated memory: need {int(nbytes[first])} "
                    f"bytes at {int(addresses[first])}")
            self.next_free[glanes] = addresses + nbytes
            _p(regs, idx, addresses, width)
        return do_alloca

    # ------------------------------------------------------------------
    def _build_call(self, inst: Instruction) -> Callable:
        getters = tuple(self._getter(a) for a in inst.operands)
        if not self.module.has_function(inst.callee):
            name, module_name = inst.callee, self.module.name

            def do_bad_call(regs, idx, glanes, width, _n=name,
                            _m=module_name):
                raise SimulationError(
                    f"no function named {_n} in module {_m}")
            return do_bad_call
        callee = self._functions[inst.callee]
        put = self._putter(inst) if inst.dest is not None else None

        def do_call(regs, idx, glanes, width, _g=getters, _f=callee,
                    _p=put):
            n = len(glanes)
            arg_values = []
            for get in _g:
                value = _np.asarray(get(regs, idx))
                if value.ndim == 0:
                    value = _np.full(n, value)
                else:
                    # Copy: callee-side writes to the formal must never
                    # alias the caller's register array.
                    value = value.copy()
                arg_values.append(value)
            result = self._call(_f, glanes, arg_values)
            if _p is not None:
                if result is None:
                    result = _np.zeros(n, dtype=_np.int64)
                _p(regs, idx, result, width)
        return do_call

    def _build_custom(self, inst: Instruction) -> Callable:
        getters = tuple(self._getter(a) for a in inst.operands)
        name = inst.custom_op
        put = self._putter(inst) if inst.dest is not None else None

        def do_custom(regs, idx, glanes, width, _g=getters, _n=name,
                      _p=put):
            pattern = self._patterns.get(_n)
            if pattern is None:
                from ..core.library import global_extension_library

                pattern = global_extension_library().lookup(_n)
                if pattern is None:
                    raise SimulationError(
                        f"custom op {_n} has no registered semantics")
                self._patterns[_n] = pattern
            n = len(glanes)
            columns = []
            for get in _g:
                value = _np.asarray(get(regs, idx))
                if value.ndim == 0:
                    value = _np.full(n, value)
                columns.append(value)
            out = _np.zeros(n, dtype=_np.int64)
            for lane in range(n):
                inputs = [int(c[lane]) for c in columns]
                try:
                    result = int(pattern.evaluate(inputs))
                except KeyError as exc:
                    raise SimulationError(
                        f"custom op {_n} raised KeyError: {exc}") from exc
                # Two's-complement into the int64 lane; put() re-wraps to
                # the destination type like the interpreter's _set().
                result &= 0xFFFFFFFFFFFFFFFF
                out[lane] = (result - (1 << 64)
                             if result >= (1 << 63) else result)
            if _p is not None:
                _p(regs, idx, out, width)
        return do_custom

    # ------------------------------------------------------------------
    # Profiles.
    # ------------------------------------------------------------------
    def _build_profiles(self) -> List[ExecutionProfile]:
        profiles = []
        for lane in range(self.n_lanes):
            profile = ExecutionProfile()
            for name, vf in self._functions.items():
                visits = self._visits[name][:, lane]
                if not visits.any():
                    continue
                per_function = profile.block_counts.setdefault(name, {})
                for vb in vf.blocks:
                    count = int(visits[vb.index])
                    if count == 0:
                        continue
                    per_function[vb.name] = count
                    profile.instructions_executed += count * vb.n_steps
                    for key, delta in vb.opcode_delta.items():
                        profile.opcode_counts[key] = (
                            profile.opcode_counts.get(key, 0) + count * delta)
                    profile.loads += count * vb.loads
                    profile.stores += count * vb.stores
                    profile.branches += count * vb.branches
                    for callee, delta in vb.call_delta.items():
                        profile.call_counts[callee] = (
                            profile.call_counts.get(callee, 0)
                            + count * delta)
            profile.taken_branches = int(self.taken[lane])
            profiles.append(profile)
        return profiles


# ----------------------------------------------------------------------
# The batch cascade.
# ----------------------------------------------------------------------

@dataclass
class BatchResult:
    """Per-lane outcomes of one :func:`run_batch` call."""

    values: List
    engine_used: str
    instructions: List[int]


def run_batch(module: Module, entry: str, arg_sets: Sequence[Sequence],
              engine: str = "native", store=None,
              memory_size: int = 1 << 20,
              max_steps: int = 50_000_000) -> BatchResult:
    """Run ``entry`` over many argument sets with the fastest viable tier.

    The requested ``engine`` is the *ceiling* of the cascade: ``native``
    tries the generated-C engine first (one fresh simulator per set, all
    sharing one compile), falls back to the vectorized interpreter when
    no compiler is available, and to per-set threaded code when NumPy is
    missing too.  ``engine="compiled"``/``"interpreter"`` skip straight
    to the respective per-set loop.  Returns bit-identical values to the
    interpreter run one set at a time.
    """
    from .engine import make_functional_simulator

    def _per_set(maker, engine_used: str) -> Optional[BatchResult]:
        values, instructions = [], []
        for arg_set in arg_sets:
            simulator = maker()
            if simulator is None:
                return None
            run_args = tuple(list(a) if isinstance(a, list) else a
                             for a in arg_set)
            values.append(simulator.run(entry, *run_args))
            instructions.append(simulator.profile.instructions_executed)
        return BatchResult(values, engine_used, instructions)

    if engine == "native":
        from .native import NativeSimulator, NativeUnavailableError

        def make_native():
            try:
                return NativeSimulator(module, memory_size=memory_size,
                                       max_steps=max_steps, store=store)
            except NativeUnavailableError:
                return None

        result = _per_set(make_native, "native")
        if result is not None:
            return result
        if numpy_available():
            simulator = VectorizedSimulator(module, len(arg_sets),
                                            memory_size=memory_size,
                                            max_steps=max_steps)
            values = simulator.run_many(entry, arg_sets)
            return BatchResult(values, "vector",
                               [p.instructions_executed
                                for p in simulator.profiles])
        engine = "compiled"

    simulator_engine = engine
    return _per_set(
        lambda: make_functional_simulator(module, engine=simulator_engine,
                                          memory_size=memory_size,
                                          max_steps=max_steps),
        simulator_engine)
