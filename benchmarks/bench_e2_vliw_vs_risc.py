"""E2 — §2.2: "In about the chip area required for a RISC processor, we can
build a 4-issue customized VLIW."

Compares, across a slice of the kernel suite, a scalar embedded RISC, a
4-issue exposed-pipeline VLIW, and a 4-issue binary-compatible
(dynamically scheduled) part: core area from the area model, cycles from
the cycle simulator.  The claim reproduced is the *shape*: the exposed
VLIW lands near the RISC in area while delivering a healthy speedup, and
the compatibility hardware of the dynamically scheduled part dominates
its area.
"""

from __future__ import annotations

from repro.arch import estimate_area, mass_market_superscalar, risc_baseline, vliw4
from repro.backend import compile_module
from repro.frontend import compile_c
from repro.opt import optimize
from repro.sim import CycleSimulator
from repro.workloads import get_kernel

from conftest import print_table, run_once

KERNELS = ["dot_product", "sad16", "viterbi_acs", "rgb_to_gray", "ip_checksum"]
SIZE = 48
SEED = 1234  # explicit input seed: sweeps are bit-reproducible end to end


def measure(machine, kernel_name):
    kernel = get_kernel(kernel_name)
    module = compile_c(kernel.source, module_name=kernel_name)
    optimize(module, level=3)
    compiled, _report = compile_module(module, machine)
    args = kernel.arguments(SIZE, seed=SEED)
    result = CycleSimulator(compiled).run(
        kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
    assert result.value == kernel.expected(args)
    return result.cycles


def test_e2_vliw_in_risc_area(benchmark):
    risc = risc_baseline()
    custom_vliw = vliw4()
    mass = mass_market_superscalar()

    def experiment():
        rows = []
        for name in KERNELS:
            risc_cycles = measure(risc, name)
            vliw_cycles = measure(custom_vliw, name)
            rows.append({
                "kernel": name,
                "risc32 cycles": risc_cycles,
                "vliw4 cycles": vliw_cycles,
                "speedup": round(risc_cycles / vliw_cycles, 2),
            })
        return rows

    rows = run_once(benchmark, experiment)

    risc_area = estimate_area(risc).core
    vliw_area = estimate_area(custom_vliw).core
    dynamic_area = estimate_area(mass, dynamically_scheduled=True).core
    area_rows = [{
        "machine": "risc32 (scalar, exposed)", "core kgates": round(risc_area, 1),
        "vs risc": 1.0},
        {"machine": "vliw4 (4-issue, exposed)", "core kgates": round(vliw_area, 1),
         "vs risc": round(vliw_area / risc_area, 2)},
        {"machine": "massmkt (4-issue, binary compatible)",
         "core kgates": round(dynamic_area, 1),
         "vs risc": round(dynamic_area / risc_area, 2)},
    ]
    print_table("E2: core area (no caches)", area_rows)
    print_table("E2: cycles, scalar RISC vs 4-issue customized VLIW", rows)

    mean_speedup = sum(r["speedup"] for r in rows) / len(rows)
    print(f"\nE2 summary: geomean-ish mean speedup {mean_speedup:.2f}x; "
          f"vliw4 is {vliw_area / risc_area:.2f}x the RISC core area while the "
          f"binary-compatible 4-issue part is {dynamic_area / risc_area:.2f}x.")

    assert mean_speedup > 1.2
    assert vliw_area / risc_area < 2.5
    assert dynamic_area > 2.0 * vliw_area
