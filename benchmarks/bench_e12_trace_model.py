"""E12 — trace-based retiming vs. cycle simulation on the E5 N×M sweep.

PR 2 made *compiling* a sweep cheap; this benchmark measures what the
trace-based analytic model (:mod:`repro.model`) buys on the *evaluation*
side.  The bench_e5 machine × kernel matrix is evaluated twice on one
warm session (all compile artifacts and kernel traces in the store):

* **cycle fidelity** — every cell runs the functional cross-check and
  the cycle-accurate simulator (the pre-model baseline);
* **trace fidelity** — every cell is priced analytically from its
  kernel's one recorded trace; the profiled run doubles as the
  functional oracle.

The benchmark asserts a ≥20x warm speedup (the ISSUE-5 acceptance
floor; typically far higher), full oracle agreement at both fidelities,
exact agreement on code size and operation counts, and cycle estimates
within the model's declared tolerance.  Results go to
``BENCH_trace_model.json`` at the repository root.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.api import Session
from repro.arch import clustered_vliw4, dsp_core, risc_baseline, vliw2, vliw4, vliw8
from repro.model import TRACE_CYCLE_TOLERANCE
from repro.toolchain import run_matrix

from conftest import bench_metric, print_table, run_once, write_baseline

MACHINES = [risc_baseline(), vliw2(), vliw4(), vliw8(), clustered_vliw4(),
            dsp_core()]
KERNELS = ["dot_product", "saturated_add", "viterbi_acs", "sad16",
           "rgb_to_gray", "ip_checksum", "histogram"]
SIZE = 24

#: acceptance floor for the warm trace-vs-cycle speedup (ISSUE 5).
MIN_SPEEDUP = 20.0

#: the scale-safe floor the baseline metric declares: the regression
#: gate holds any fresh run — noisy CI included — to this absolute
#: bound, while the in-run assertion above uses the env-resolved floor.
GATE_SPEEDUP_FLOOR = 10.0

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_trace_model.json"


def _matrix(session, fidelity):
    start = time.perf_counter()
    report = run_matrix(MACHINES, kernel_names=KERNELS, size=SIZE,
                        opt_level=2, fidelity=fidelity,
                        pipeline=session.pipeline)
    return time.perf_counter() - start, report


def test_e12_trace_model(benchmark):
    session = Session(name="bench-e12")

    def experiment():
        # Warm everything once: compile artifacts, traces, cache replays.
        _matrix(session, "cycle")
        _matrix(session, "trace")
        # Measured, warm passes.
        cycle_s, cycle_report = _matrix(session, "cycle")
        trace_s, trace_report = _matrix(session, "trace")
        return cycle_s, cycle_report, trace_s, trace_report

    cycle_s, cycle_report, trace_s, trace_report = run_once(benchmark,
                                                            experiment)
    speedup = cycle_s / trace_s if trace_s > 0 else float("inf")

    rows = []
    worst_error = 0.0
    for cycle_cell, trace_cell in zip(cycle_report.cells, trace_report.cells):
        assert (cycle_cell.machine, cycle_cell.kernel) == \
            (trace_cell.machine, trace_cell.kernel)
        error = (abs(trace_cell.cycles - cycle_cell.cycles)
                 / max(1, cycle_cell.cycles))
        worst_error = max(worst_error, error)
        rows.append({
            "machine": cycle_cell.machine, "kernel": cycle_cell.kernel,
            "cycle": cycle_cell.cycles, "trace": trace_cell.cycles,
            "err%": round(100 * error, 3),
        })
    print_table("E12: per-cell cycles, cycle vs. trace fidelity", rows)
    print(f"\nE12 summary: {len(rows)} cells "
          f"({len(cycle_report.machines)} machines x "
          f"{len(cycle_report.kernels)} kernels), warm cycle-fidelity "
          f"{cycle_s * 1e3:.1f} ms vs trace-fidelity {trace_s * 1e3:.1f} ms "
          f"-> {speedup:.1f}x; worst cycle error "
          f"{100 * worst_error:.3f}% (tolerance "
          f"{100 * TRACE_CYCLE_TOLERANCE:.0f}%).")

    floor = float(os.environ.get("TRACE_MIN_SPEEDUP", MIN_SPEEDUP))
    write_baseline(OUTPUT, "e12_trace_model", {
        "size": SIZE,
        "cells": len(rows),
        "cycle_seconds": round(cycle_s, 4),
        "trace_seconds": round(trace_s, 4),
        "speedup": round(speedup, 1),
        "worst_cycle_error": round(worst_error, 6),
        "tolerance": TRACE_CYCLE_TOLERANCE,
        "cycle_report": cycle_report.to_dict(),
        "trace_report": trace_report.to_dict(),
    }, metrics={
        "speedup": bench_metric(round(speedup, 1), band=4.0,
                                floor=min(floor, GATE_SPEEDUP_FLOOR)),
        "worst_cycle_error": bench_metric(
            round(worst_error, 6), direction="lower", kind="fidelity",
            ceiling=TRACE_CYCLE_TOLERANCE),
        "pass_rate": bench_metric(
            (cycle_report.pass_rate() + trace_report.pass_rate()) / 2,
            kind="fidelity", floor=1.0),
    }, shrunk=floor < MIN_SPEEDUP)

    assert cycle_report.all_correct, [c.error for c in cycle_report.failures]
    assert trace_report.all_correct, [c.error for c in trace_report.failures]
    for cycle_cell, trace_cell in zip(cycle_report.cells, trace_report.cells):
        assert trace_cell.operations == cycle_cell.operations
        assert trace_cell.code_bytes == cycle_cell.code_bytes
    assert worst_error <= TRACE_CYCLE_TOLERANCE
    assert speedup >= floor, (
        f"warm trace fidelity only {speedup:.1f}x faster (floor {floor}x)")
