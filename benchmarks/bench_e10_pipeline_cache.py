"""E10 — staged compilation: cold vs. warm design-space sweep compiles.

PR 1 made *execution* fast; this benchmark measures what the staged
compile pipeline (:mod:`repro.pipeline`) buys on the *compile* side of a
design-space sweep.  A sweep over the latency/encoding axes compiles a
slice of the kernel suite for every design point twice on one pipeline:

* **cold** — an empty artifact store: every stage builds;
* **warm** — the same sweep again: the machine-independent front half and
  every backend artifact are served from the content-addressed store.

The benchmark checks that warm builds are bit-identical to cold builds
(binary words and bundle tables) and records per-stage hit rates.
Results are written to ``BENCH_pipeline_cache.json`` at the repository
root so the compile-path perf trajectory is tracked over time.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.dse import DesignSpace
from repro.pipeline import CompilePipeline
from repro.workloads import get_kernel

from conftest import bench_metric, print_table, run_once, write_baseline

#: kernels swept (a slice of the suite: small, medium, large IR).
KERNEL_NAMES = ("dot_product", "fir_filter", "sad16")

#: the sweep: latency and encoding axes only (machine-independent half
#: must be compiled exactly once per kernel across all of it).
SPACE = DesignSpace(
    issue_widths=(2, 4),
    register_counts=(32, 64),
    cluster_counts=(1,),
    mul_unit_counts=(1,),
    mem_unit_counts=(1,),
    mul_latencies=(1, 2, 3),
    mem_latencies=(2, 3),
    compression_options=(True, False),
)

OPT_LEVEL = 3

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pipeline_cache.json"


def _sweep(pipeline, kernels, machines):
    """Compile+encode every kernel for every machine → (seconds, images)."""
    images = {}
    start = time.perf_counter()
    for kernel in kernels:
        for machine in machines:
            _module, compiled, _report, key = pipeline.build(
                kernel.source, machine, name=kernel.name,
                opt_level=OPT_LEVEL)
            images[(kernel.name, machine.name)] = pipeline.encode(
                compiled, key)
    return time.perf_counter() - start, images


def test_e10_pipeline_cache_speedup(benchmark):
    def experiment():
        kernels = [get_kernel(name) for name in KERNEL_NAMES]
        machines = [point.to_machine() for point in SPACE.points()]
        pipeline = CompilePipeline()

        cold_s, cold_images = _sweep(pipeline, kernels, machines)
        warm_s, warm_images = _sweep(pipeline, kernels, machines)

        identical = all(
            cold_images[key].words == warm_images[key].words
            and cold_images[key].bundle_table == warm_images[key].bundle_table
            for key in cold_images
        )

        stage_stats = pipeline.stats()
        rows = []
        for stage in ("frontend", "optimize", "backend", "encode"):
            stats = stage_stats.get(stage, {})
            rows.append({
                "stage": stage,
                "misses": stats.get("misses", 0),
                "hits": stats.get("hits", 0),
                "hit_rate": stats.get("hit_rate", 0.0),
                "built_ms": round(stats.get("seconds_built", 0.0) * 1e3, 2),
                "saved_ms": round(stats.get("seconds_saved", 0.0) * 1e3, 2),
            })
        summary = {
            "kernels": len(kernels),
            "design_points": len(machines),
            "compiles_per_sweep": len(kernels) * len(machines),
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 2),
            "bit_identical": identical,
            "frontend_builds": stage_stats["frontend"]["misses"],
            "optimize_builds": stage_stats["optimize"]["misses"],
        }
        return rows, summary

    rows, summary = run_once(benchmark, experiment)
    print_table("E10: staged pipeline, per-stage cache behaviour", rows)
    print(
        f"\nE10 summary: {summary['compiles_per_sweep']} compiles/sweep "
        f"({summary['kernels']} kernels x {summary['design_points']} design "
        f"points); cold {summary['cold_s'] * 1e3:.0f} ms, warm "
        f"{summary['warm_s'] * 1e3:.0f} ms -> {summary['warm_speedup']}x; "
        f"front half built {summary['optimize_builds']} time(s) total; "
        f"bit-identical artifacts: {summary['bit_identical']}."
    )

    write_baseline(OUTPUT, "e10_pipeline_cache", {
        "opt_level": OPT_LEVEL,
        "rows": rows,
        "summary": summary,
    }, metrics={
        "warm_speedup": bench_metric(summary["warm_speedup"], band=4.0,
                                     floor=3.0),
        "bit_identical": bench_metric(1.0 if summary["bit_identical"]
                                      else 0.0, kind="fidelity", floor=1.0),
    })

    # Acceptance: the machine-independent half compiles once per kernel,
    # warm sweeps are >=3x faster, and artifacts are bit-identical.
    assert summary["bit_identical"]
    assert summary["frontend_builds"] == summary["kernels"]
    assert summary["optimize_builds"] == summary["kernels"]
    assert summary["design_points"] >= 30
    assert summary["warm_speedup"] >= 3.0
