"""E13 — service daemon under concurrent mixed client load.

PR 6 moved execution behind a persistent daemon; this benchmark prices
that move.  One daemon (shared disk store, sharded worker pool) is
warmed with the E5 machine × kernel validation matrix, then a fleet of
concurrent clients replays a mixed request stream against it — full
42-cell matrices, single-machine matrix slices, and individual kernel
runs — the "8 concurrent clients, one warm daemon" load shape of the
ISSUE-6 acceptance test.

Measured: per-request latency (p50/p99), end-to-end throughput, and the
cache economics of the shared store (warm matrix cells must be served
from the cell memo, not recomputed).  Asserted: every concurrent matrix
response is bit-identical to a single-process ``Session.execute`` of
the same request, and the fleet-wide cell hit rate stays above the
ISSUE-6 floor (≥90%, ``E13_MIN_HIT_RATE`` to override).  Results go to
``BENCH_service_load.json`` at the repository root.

Scale follows the shared ``--shrink`` flag (the full shape exercises
hundreds of requests); ``E13_CLIENTS``, ``E13_REQUESTS_PER_CLIENT``,
``E13_WORKERS`` and ``E13_WORKER_MODE`` still pin individual knobs.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from repro.api import Session
from repro.api.requests import MatrixRequest, RunRequest
from repro.obs import snapshot_quantile, snapshot_value
from repro.service import CELL_STAGE, ServiceClient, ServiceDaemon

from conftest import (
    bench_metric, print_table, run_once, shrink_knob, write_baseline,
)

#: the E5 validation-matrix shape: 6 machines x 7 kernels = 42 cells.
MACHINES = ["risc32", "vliw2", "vliw4", "vliw8", "vliw4c2", "dsp16"]
KERNELS = ["dot_product", "saturated_add", "viterbi_acs", "sad16",
           "rgb_to_gray", "ip_checksum", "histogram"]
SIZE = 24

#: acceptance floor for the fleet-wide warm cell hit rate (ISSUE 6).
MIN_HIT_RATE = 0.90

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service_load.json"


def _full_matrix() -> MatrixRequest:
    return MatrixRequest(machines=MACHINES, kernels=KERNELS, size=SIZE)


def _request_stream(client_index: int, requests_per_client: int):
    """One client's mixed request list (deterministic per client)."""
    requests = []
    for index in range(requests_per_client):
        slot = (client_index + index) % 5
        if slot == 0:
            requests.append(RunRequest(
                kernel=KERNELS[index % len(KERNELS)],
                machine=MACHINES[index % len(MACHINES)],
                size=SIZE, engine="cycle"))
        elif slot == 1:
            requests.append(MatrixRequest(
                machines=[MACHINES[index % len(MACHINES)]],
                kernels=KERNELS, size=SIZE))
        else:
            requests.append(_full_matrix())
    return requests


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1,
                       int(fraction * (len(ordered) - 1) + 0.5))]


def _cell_economics(stats):
    """Fleet-wide cell-memo hits/misses from the daemon's merged metrics
    registry (worker registry snapshots ride home in result frames)."""
    metrics = stats.get("metrics") or {}
    hits = int(snapshot_value(metrics, "store_hits", stage=CELL_STAGE))
    misses = int(snapshot_value(metrics, "store_misses", stage=CELL_STAGE))
    return hits, misses


def test_e13_service_load(benchmark, tmp_path, pytestconfig):
    clients = shrink_knob(pytestconfig, "E13_CLIENTS", 8, 4)
    requests_per_client = shrink_knob(
        pytestconfig, "E13_REQUESTS_PER_CLIENT", 25, 6)
    workers = shrink_knob(pytestconfig, "E13_WORKERS", 4, 2)
    worker_mode = shrink_knob(pytestconfig, "E13_WORKER_MODE",
                              "thread", "thread", cast=str)

    with Session(name="bench-e13-oracle") as oracle_session:
        oracle = oracle_session.execute(_full_matrix()).to_dict()
    oracle.pop("provenance")

    daemon = ServiceDaemon(str(tmp_path / "svc"), workers=workers,
                           worker_mode=worker_mode, name="bench-e13",
                           task_timeout=600.0)
    with daemon:
        with ServiceClient(daemon.endpoint) as warm:
            warm_start = time.perf_counter()
            warm_response = warm.execute(_full_matrix(), timeout=600)
            warm_seconds = time.perf_counter() - warm_start
            warm_dict = warm_response.to_dict()
            warm_dict.pop("provenance")
            assert warm_dict == oracle, "cold daemon matrix diverged"
            # Compulsory cold misses end here; the hit-rate floor
            # applies to the concurrent phase against the warm store.
            warm_hits, warm_misses = _cell_economics(warm.stats())

        latencies = [[] for _ in range(clients)]
        matrix_responses = [[] for _ in range(clients)]
        errors = []

        def drive(client_index: int) -> None:
            try:
                with ServiceClient(daemon.endpoint) as client:
                    for request in _request_stream(client_index,
                                                   requests_per_client):
                        start = time.perf_counter()
                        response = client.execute(request, timeout=600)
                        latencies[client_index].append(
                            time.perf_counter() - start)
                        if (request.kind == "matrix"
                                and len(request.machines) == len(MACHINES)):
                            matrix_responses[client_index].append(
                                response.to_dict())
            except Exception as exc:  # noqa: BLE001 - surface in main thread
                errors.append(f"client {client_index}: {exc}")

        def experiment():
            threads = [threading.Thread(target=drive, args=(index,),
                                        name=f"e13-client-{index}")
                       for index in range(clients)]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return time.perf_counter() - start

        wall_seconds = run_once(benchmark, experiment)

        with ServiceClient(daemon.endpoint) as reporter:
            stats = reporter.stats()

    assert not errors, errors
    flat = [sample for per_client in latencies for sample in per_client]
    total_requests = len(flat)
    assert total_requests == clients * requests_per_client

    p50 = _percentile(flat, 0.50)
    p99 = _percentile(flat, 0.99)
    throughput = total_requests / wall_seconds if wall_seconds else 0.0
    total_hits, total_misses = _cell_economics(stats)
    hits = total_hits - warm_hits
    misses = total_misses - warm_misses
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    # Queue economics straight from the daemon's metrics registry: how
    # long jobs sat queued before a runner claimed them, and the build
    # seconds the shared cell memo saved the fleet.
    metrics = stats["metrics"]
    queue_wait_p50 = snapshot_quantile(metrics, "queue_wait_seconds", 0.50)
    queue_wait_p99 = snapshot_quantile(metrics, "queue_wait_seconds", 0.99)
    jobs_done = snapshot_value(metrics, "jobs_finished", state="done")
    cell_seconds_saved = snapshot_value(metrics, "store_seconds_saved",
                                        stage=CELL_STAGE)

    for per_client in matrix_responses:
        for response in per_client:
            response.pop("provenance")
            assert response == oracle, \
                "concurrent matrix response diverged from Session.execute"
    matrix_count = sum(len(per_client) for per_client in matrix_responses)

    print_table("E13: service load summary", [{
        "clients": clients,
        "requests": total_requests,
        "wall_s": round(wall_seconds, 2),
        "rps": round(throughput, 1),
        "p50_ms": round(p50 * 1e3, 1),
        "p99_ms": round(p99 * 1e3, 1),
        "qwait_p50_ms": round(queue_wait_p50 * 1e3, 1),
        "qwait_p99_ms": round(queue_wait_p99 * 1e3, 1),
        "cell_hit%": round(100 * hit_rate, 1),
    }])
    print(f"\nE13 summary: {total_requests} mixed requests from {clients} "
          f"concurrent clients against one warm daemon ({workers} "
          f"{worker_mode} workers): {throughput:.1f} req/s, p50 "
          f"{p50 * 1e3:.1f} ms, p99 {p99 * 1e3:.1f} ms; queue wait p50 "
          f"{queue_wait_p50 * 1e3:.1f} ms / p99 {queue_wait_p99 * 1e3:.1f} "
          f"ms over {jobs_done:.0f} jobs; cold 42-cell "
          f"matrix {warm_seconds:.2f} s; fleet cell-memo hit rate "
          f"{100 * hit_rate:.1f}% ({hits} hits / {misses} misses, "
          f"{cell_seconds_saved:.2f} build-seconds saved); "
          f"{matrix_count} full-matrix responses bit-identical to "
          f"Session.execute.")

    floor = float(os.environ.get("E13_MIN_HIT_RATE", MIN_HIT_RATE))
    write_baseline(OUTPUT, "e13_service_load", {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "workers": workers,
        "worker_mode": worker_mode,
        "matrix_cells": len(MACHINES) * len(KERNELS),
        "requests": total_requests,
        "warm_matrix_seconds": round(warm_seconds, 4),
        "wall_seconds": round(wall_seconds, 4),
        "throughput_rps": round(throughput, 2),
        "latency_p50_s": round(p50, 5),
        "latency_p99_s": round(p99, 5),
        "queue_wait_p50_s": round(queue_wait_p50, 5),
        "queue_wait_p99_s": round(queue_wait_p99, 5),
        "jobs_done": int(jobs_done),
        "cell_hits": hits,
        "cell_misses": misses,
        "cell_hit_rate": round(hit_rate, 4),
        "cell_seconds_saved": round(cell_seconds_saved, 3),
        "matrix_responses_checked": matrix_count,
        "queue": stats["queue"],
        "store": {key: stats["store"][key]
                  for key in ("entries", "bytes", "size_budget_bytes")},
    }, metrics={
        "cell_hit_rate": bench_metric(round(hit_rate, 4), floor=floor),
        "failed_jobs": bench_metric(stats["queue"]["failed"],
                                    kind="fidelity", direction="lower",
                                    ceiling=0),
        "throughput_rps": bench_metric(round(throughput, 2), band=10.0),
        "matrix_responses_checked": bench_metric(
            matrix_count, floor=1),
    }, shrunk=bool(pytestconfig.getoption("--shrink")))

    assert stats["queue"]["failed"] == 0
    assert hit_rate >= floor, (
        f"fleet cell hit rate {hit_rate:.3f} below the {floor:.2f} floor")
