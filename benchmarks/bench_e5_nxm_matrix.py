"""E5 — mass customization discipline (§3.1): the N×M validation matrix.

N architectures x M programs, every cell compiled by the same table-driven
toolchain, executed on the cycle simulator and validated against both the
Python oracle and the machine-independent functional simulation.  The
pass-rate of the matrix is the quantitative form of "all toolchain changes
support all architectures in range".
"""

from __future__ import annotations

from pathlib import Path

from repro.arch import clustered_vliw4, dsp_core, risc_baseline, vliw2, vliw4, vliw8
from repro.toolchain import run_matrix

from conftest import bench_metric, print_table, run_once, write_baseline

MACHINES = [risc_baseline(), vliw2(), vliw4(), vliw8(), clustered_vliw4(), dsp_core()]
KERNELS = ["dot_product", "saturated_add", "viterbi_acs", "sad16",
           "rgb_to_gray", "ip_checksum", "histogram"]
SIZE = 24

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_nxm_matrix.json"


def test_e5_nxm_matrix(benchmark):
    report = run_once(
        benchmark,
        lambda: run_matrix(MACHINES, kernel_names=KERNELS, size=SIZE, opt_level=2),
    )

    print_table("E5: N x M matrix (per-cell cycles / correctness)", report.to_rows())

    grid_rows = []
    for kernel in report.kernels:
        row = {"kernel": kernel}
        for machine in report.machines:
            cell = report.cell(machine, kernel)
            row[machine] = cell.cycles if cell.correct else "FAIL"
        grid_rows.append(row)
    print_table("E5: cycles per (kernel, machine) cell", grid_rows)
    print(f"\nE5 summary: {len(report.cells)} cells "
          f"({len(report.machines)} architectures x {len(report.kernels)} programs), "
          f"pass rate {100 * report.pass_rate():.1f}%.")

    # The baseline JSON is the report's own schema-versioned export
    # (MatrixReport.to_dict — the same helper the service layer builds
    # its matrix responses from), not an ad-hoc dict.
    write_baseline(OUTPUT, "e5_nxm_matrix", {
        "size": SIZE,
        "report": report.to_dict(),
    }, metrics={
        "pass_rate": bench_metric(report.pass_rate(), kind="fidelity",
                                  floor=1.0),
        "cells": bench_metric(len(report.cells), kind="fidelity",
                              floor=len(MACHINES) * len(KERNELS),
                              ceiling=len(MACHINES) * len(KERNELS)),
    })

    assert len(report.cells) == len(MACHINES) * len(KERNELS)
    assert report.all_correct, [c.error for c in report.failures]
