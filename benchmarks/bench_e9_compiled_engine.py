"""E9 — compiled-simulation speedup: threaded code vs the interpreter.

The paper's toolchain argument leans on simulation that is "as fast as
possible" so that architectures can be explored per application.  This
benchmark measures what the `repro.exec` subsystem buys: for a slice of
the kernel suite it times the reference interpreter
(:class:`FunctionalSimulator`) against the threaded-code engine
(:class:`CompiledSimulator`) twice — cold (translation included) and warm
(translation served by the content-addressed code cache) — and records
the code-cache hit rate.  Results are written to
``BENCH_compiled_engine.json`` at the repository root so the perf
trajectory of the engine is tracked over time.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.exec import CodeCache, CompiledSimulator
from repro.frontend import compile_c
from repro.opt import optimize
from repro.sim import FunctionalSimulator
from repro.workloads import get_kernel

from conftest import print_table, run_once

#: (kernel, problem size) — sizes chosen so execution dominates setup.
CASES = [
    ("dot_product", 512),
    ("fir_filter", 192),
    ("matmul4", None),
    ("crc32", 256),
    ("viterbi_acs", 96),
]

REPEATS = 3

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_compiled_engine.json"


def _best_time(make_simulator, module, entry, args, repeats=REPEATS):
    """Best-of-N wall time of one fresh-simulator run (returns s, value)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        simulator = make_simulator(module)
        run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
        start = time.perf_counter()
        value = simulator.run(entry, *run_args)
        best = min(best, time.perf_counter() - start)
    return best, value


def test_e9_compiled_engine_speedup(benchmark):
    def experiment():
        rows = []
        for name, size in CASES:
            kernel = get_kernel(name)
            module = compile_c(kernel.source, module_name=name)
            optimize(module, level=2)
            args = kernel.arguments(size, seed=2026)
            expected = kernel.expected(args)

            interp_s, interp_value = _best_time(
                FunctionalSimulator, module, kernel.entry, args)

            # Cold: private cache, first construction pays translation.
            cold_cache = CodeCache()
            cold_s, cold_value = _best_time(
                lambda m: CompiledSimulator(m, cache=cold_cache),
                module, kernel.entry, args, repeats=1)

            # Warm: every run after the first hits the code cache.
            warm_cache = CodeCache()
            warm_cache.get_or_translate(module)
            warm_s, warm_value = _best_time(
                lambda m: CompiledSimulator(m, cache=warm_cache),
                module, kernel.entry, args)

            assert interp_value == expected
            assert cold_value == expected and warm_value == expected

            rows.append({
                "kernel": name,
                "size": size or kernel.default_size,
                "interp_ms": round(interp_s * 1e3, 3),
                "cold_ms": round(cold_s * 1e3, 3),
                "warm_ms": round(warm_s * 1e3, 3),
                "cold_speedup": round(interp_s / cold_s, 2),
                "warm_speedup": round(interp_s / warm_s, 2),
                "cache_hit_rate": warm_cache.stats.hit_rate,
            })
        return rows

    rows = run_once(benchmark, experiment)
    print_table("E9: interpreter vs compiled engine (threaded code)", rows)

    warm_speedups = [r["warm_speedup"] for r in rows]
    best = max(warm_speedups)
    mean = sum(warm_speedups) / len(warm_speedups)
    print(f"\nE9 summary: warm-cache speedup best {best:.2f}x / mean {mean:.2f}x "
          f"over {len(rows)} kernels; cold translation already amortizes on "
          f"one run for every kernel above 1x.")

    OUTPUT.write_text(json.dumps({
        "experiment": "e9_compiled_engine",
        "python": platform.python_version(),
        "repeats": REPEATS,
        "rows": rows,
        "summary": {
            "best_warm_speedup": best,
            "mean_warm_speedup": round(mean, 2),
        },
    }, indent=2) + "\n")
    print(f"baseline written to {OUTPUT.name}")

    # Acceptance: >=2x on at least one kernel with a warm code cache.
    assert best >= 2.0
