"""E9 — execution-tier speedups: interpreter vs threaded code vs native C.

The paper's toolchain argument leans on simulation that is "as fast as
possible" so that architectures can be explored per application.  This
benchmark measures what the `repro.exec` subsystem buys, tier by tier:
for a slice of the kernel suite it times

* the reference interpreter (:class:`FunctionalSimulator`);
* the threaded-code engine (:class:`CompiledSimulator`), cold
  (translation included) and warm (served by the code cache);
* the generated-C native engine (:class:`NativeSimulator`), warm (the
  ``.so`` compiled once, runs timed with fresh simulators) — skipped
  when the host has no C compiler;
* the 32-wide batch tiers: the NumPy-lockstep
  :class:`VectorizedSimulator` against a per-set compiled-engine loop —
  skipped when NumPy is missing.

Results are written to ``BENCH_compiled_engine.json`` at the repository
root so the perf trajectory of the engines is tracked over time.  Run
with ``--shrink`` (or the ``E9_*`` env knobs) for the CI smoke scale.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.exec import (
    CodeCache, CompiledSimulator, NativeCodeCache, NativeSimulator,
    VectorizedSimulator, native_available, numpy_available,
)
from repro.frontend import compile_c
from repro.opt import optimize
from repro.sim import FunctionalSimulator
from repro.workloads import get_kernel

from conftest import (
    bench_metric, print_table, run_once, shrink_knob, write_baseline,
)

#: (kernel, problem size) — sizes chosen so execution dominates setup.
CASES = [
    ("dot_product", 512),
    ("fir_filter", 192),
    ("matmul4", None),
    ("crc32", 256),
    ("viterbi_acs", 96),
]

#: lanes of the batch-tier comparison (the ShardedBatch chunk shape).
BATCH_LANES = 32

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_compiled_engine.json"


def _best_time(make_simulator, module, entry, args, repeats):
    """Best-of-N wall time of one fresh-simulator run (returns s, value)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        simulator = make_simulator(module)
        run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
        start = time.perf_counter()
        value = simulator.run(entry, *run_args)
        best = min(best, time.perf_counter() - start)
    return best, value


def _batch_args(kernel, size, lanes):
    return [kernel.arguments(size, seed=3000 + lane) for lane in range(lanes)]


def _copies(args):
    return tuple(list(a) if isinstance(a, list) else a for a in args)


def test_e9_execution_tiers(benchmark, pytestconfig):
    repeats = shrink_knob(pytestconfig, "E9_REPEATS", 3, 1)
    scale = shrink_knob(pytestconfig, "E9_SIZE_DIVISOR", 1, 4)
    lanes = shrink_knob(pytestconfig, "E9_BATCH_LANES", BATCH_LANES, 8)
    has_native = native_available()
    has_numpy = numpy_available()

    def experiment():
        rows, batch_rows = [], []
        for name, size in CASES:
            kernel = get_kernel(name)
            module = compile_c(kernel.source, module_name=name)
            optimize(module, level=2)
            case_size = None if size is None else max(8, size // scale)
            args = kernel.arguments(case_size, seed=2026)
            expected = kernel.expected(args)

            interp_s, interp_value = _best_time(
                FunctionalSimulator, module, kernel.entry, args, repeats)

            # Cold: private cache, first construction pays translation.
            cold_cache = CodeCache()
            cold_s, cold_value = _best_time(
                lambda m: CompiledSimulator(m, cache=cold_cache),
                module, kernel.entry, args, repeats=1)

            # Warm: every run after the first hits the code cache.
            warm_cache = CodeCache()
            warm_cache.get_or_translate(module)
            warm_s, warm_value = _best_time(
                lambda m: CompiledSimulator(m, cache=warm_cache),
                module, kernel.entry, args, repeats)

            assert interp_value == expected
            assert cold_value == expected and warm_value == expected

            row = {
                "kernel": name,
                "size": case_size or kernel.default_size,
                "interp_ms": round(interp_s * 1e3, 3),
                "cold_ms": round(cold_s * 1e3, 3),
                "warm_ms": round(warm_s * 1e3, 3),
                "cold_speedup": round(interp_s / cold_s, 2),
                "warm_speedup": round(interp_s / warm_s, 2),
                "cache_hit_rate": warm_cache.stats.hit_rate,
            }

            if has_native:
                # Warm native: the .so is compiled once (construction
                # outside the timer, mirroring the warm compiled case);
                # fresh simulators then share the loaded program.
                native_cache = NativeCodeCache()
                NativeSimulator(module, native_cache=native_cache)
                native_s, native_value = _best_time(
                    lambda m: NativeSimulator(m, native_cache=native_cache),
                    module, kernel.entry, args, repeats)
                assert native_value == expected
                row["native_ms"] = round(native_s * 1e3, 3)
                row["native_speedup"] = round(interp_s / native_s, 1)
                row["native_vs_compiled"] = round(warm_s / native_s, 1)
                native_cache.clear()
            rows.append(row)

            if has_numpy:
                arg_sets = _batch_args(kernel, case_size, lanes)
                batch_expected = [kernel.expected(a) for a in arg_sets]

                loop_cache = CodeCache()
                loop_cache.get_or_translate(module)
                start = time.perf_counter()
                loop_values = []
                for arg_set in arg_sets:
                    simulator = CompiledSimulator(module, cache=loop_cache)
                    loop_values.append(
                        simulator.run(kernel.entry, *_copies(arg_set)))
                loop_s = time.perf_counter() - start

                start = time.perf_counter()
                vector = VectorizedSimulator(module, lanes)
                vector_values = vector.run_many(
                    kernel.entry, [_copies(a) for a in arg_sets])
                vector_s = time.perf_counter() - start

                assert loop_values == batch_expected
                assert vector_values == batch_expected
                batch_rows.append({
                    "kernel": name,
                    "lanes": lanes,
                    "compiled_loop_ms": round(loop_s * 1e3, 3),
                    "vector_ms": round(vector_s * 1e3, 3),
                    "vector_speedup": round(loop_s / vector_s, 2),
                })
        return rows, batch_rows

    rows, batch_rows = run_once(benchmark, experiment)
    print_table("E9: execution tiers (interpreter / compiled / native)", rows)
    if batch_rows:
        print_table(
            f"E9: {lanes}-wide batches (vectorized vs compiled loop)",
            batch_rows)

    warm_speedups = [r["warm_speedup"] for r in rows]
    best = max(warm_speedups)
    mean = sum(warm_speedups) / len(warm_speedups)
    summary = {
        "best_warm_speedup": best,
        "mean_warm_speedup": round(mean, 2),
    }
    lines = [f"warm compiled {best:.2f}x best / {mean:.2f}x mean over "
             f"{len(rows)} kernels"]
    if has_native:
        native_speedups = [r["native_speedup"] for r in rows]
        summary["best_native_speedup"] = max(native_speedups)
        summary["mean_native_speedup"] = round(
            sum(native_speedups) / len(native_speedups), 1)
        lines.append(f"native {max(native_speedups):.1f}x best over the "
                     f"interpreter")
    if batch_rows:
        vector_speedups = [r["vector_speedup"] for r in batch_rows]
        summary["best_vector_speedup"] = max(vector_speedups)
        lines.append(f"{lanes}-wide vector batches "
                     f"{max(vector_speedups):.2f}x best over the compiled "
                     f"loop")
    print("\nE9 summary: " + "; ".join(lines) + ".")

    # Acceptance floors (env-overridable for noisy shared runners).
    warm_floor = shrink_knob(pytestconfig, "E9_MIN_WARM_SPEEDUP",
                             2.0, 2.0, cast=float)
    metrics = {
        "best_warm_speedup": bench_metric(best, band=4.0, floor=warm_floor),
        "mean_warm_speedup": bench_metric(summary["mean_warm_speedup"],
                                          band=4.0),
    }
    if has_native:
        metrics["best_native_speedup"] = bench_metric(
            summary["best_native_speedup"], band=4.0,
            floor=shrink_knob(pytestconfig, "E9_MIN_NATIVE_VS_INTERP",
                              25.0, 5.0, cast=float))
    if batch_rows:
        metrics["best_vector_speedup"] = bench_metric(
            summary["best_vector_speedup"], band=4.0)
    write_baseline(OUTPUT, "e9_execution_tiers", {
        "repeats": repeats,
        "native_available": has_native,
        "numpy_available": has_numpy,
        "batch_lanes": lanes,
        "rows": rows,
        "batch_rows": batch_rows,
        "summary": summary,
    }, metrics=metrics,
        shrunk=bool(pytestconfig.getoption("--shrink")))

    assert best >= warm_floor
    if has_native:
        vs_compiled_floor = shrink_knob(
            pytestconfig, "E9_MIN_NATIVE_VS_COMPILED", 5.0, 2.0, cast=float)
        vs_interp_floor = shrink_knob(
            pytestconfig, "E9_MIN_NATIVE_VS_INTERP", 25.0, 5.0, cast=float)
        good = sum(1 for r in rows
                   if r["native_vs_compiled"] >= vs_compiled_floor
                   and r["native_speedup"] >= vs_interp_floor)
        assert good * 2 >= len(rows), (
            f"native tier fast enough on only {good}/{len(rows)} kernels "
            f"(floors: {vs_compiled_floor}x vs compiled, "
            f"{vs_interp_floor}x vs interpreter)")
    if batch_rows:
        vector_floor = shrink_knob(pytestconfig, "E9_MIN_VECTOR_SPEEDUP",
                                   2.0, 1.2, cast=float)
        good = sum(1 for r in batch_rows
                   if r["vector_speedup"] >= vector_floor)
        assert good * 2 >= len(batch_rows), (
            f"vector batch tier above {vector_floor}x on only "
            f"{good}/{len(batch_rows)} kernels")


def test_e9_obs_off_overhead(benchmark, pytestconfig):
    """``--obs off`` must add no measurable cost to the hot engine path.

    Two measurements: the per-call cost of a would-be span when the
    mode is ``off`` (one mode check, no allocation), and the warm
    compiled-engine run time under ``off`` vs ``metrics`` — the tiers
    benchmarked above must be unchanged when observability is disabled.
    """
    from repro.obs import global_tracer, obs_override, reset_global_tracer

    repeats = max(shrink_knob(pytestconfig, "E9_REPEATS", 3, 1), 3)
    kernel = get_kernel("dot_product")
    module = compile_c(kernel.source, module_name="dot_product")
    optimize(module, level=2)
    args = kernel.arguments(256, seed=2026)
    expected = kernel.expected(args)
    cache = CodeCache()
    cache.get_or_translate(module)

    def timed_run(mode):
        with obs_override(mode):
            best = float("inf")
            for _ in range(repeats):
                simulator = CompiledSimulator(module, cache=cache)
                run_args = tuple(list(a) if isinstance(a, list) else a
                                 for a in args)
                start = time.perf_counter()
                value = simulator.run(kernel.entry, *run_args)
                best = min(best, time.perf_counter() - start)
            assert value == expected
        return best

    def experiment():
        iterations = 20000
        tracer = global_tracer()
        with obs_override("off"):
            start = time.perf_counter()
            for _ in range(iterations):
                with tracer.span("bench"):
                    pass
            per_span_us = (time.perf_counter() - start) / iterations * 1e6
        off_s = timed_run("off")
        metrics_s = timed_run("metrics")
        reset_global_tracer()
        return per_span_us, off_s, metrics_s

    per_span_us, off_s, metrics_s = run_once(benchmark, experiment)
    print(f"\nE9 obs overhead: null span {per_span_us:.3f} us/call; warm "
          f"compiled run {off_s * 1e3:.3f} ms (off) vs "
          f"{metrics_s * 1e3:.3f} ms (metrics)")

    if OUTPUT.exists():
        baseline = json.loads(OUTPUT.read_text())
        baseline["obs_overhead"] = {
            "null_span_us": round(per_span_us, 3),
            "warm_off_ms": round(off_s * 1e3, 3),
            "warm_metrics_ms": round(metrics_s * 1e3, 3),
        }
        OUTPUT.write_text(json.dumps(baseline, indent=2) + "\n")

    # A disabled span is one mode check — far below a single simulated
    # instruction.  The band is generous for noisy shared CI runners.
    assert per_span_us < shrink_knob(pytestconfig, "E9_MAX_NULL_SPAN_US",
                                     25.0, 25.0, cast=float)
    # The off path must sit within noise of the uninstrumented engine
    # (the hot run loop opens no spans and touches no counters).
    assert off_s <= metrics_s * 1.5 + 1e-3, (
        f"obs off slower than metrics mode: {off_s:.6f}s vs {metrics_s:.6f}s")
