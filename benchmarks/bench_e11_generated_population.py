"""E11 — population-scale DSE over generated workloads.

Previous experiments swept 8 hand-written kernels; this one manufactures
a 100+ kernel population (fixed seed, 5 scenario families) with
:mod:`repro.gen` and pushes it through the whole stack:

* **compile** — every kernel through the staged pipeline, twice on one
  store (cold vs. warm sweep: the content-addressed reuse story must
  hold for generated source exactly as for the hand-written suite);
* **execute** — every kernel on both functional engines, checked
  bit-identical against its generated Python oracle;
* **characterize** — static (op histograms, ILP bound) and dynamic
  (memory/branch fractions) features, aggregated per family;
* **customize** — per-family customization gain through the standard
  ``Evaluator``/``BatchEvaluator`` path on a 4-issue baseline.

Results land in ``BENCH_generated_population.json`` at the repo root.
``GEN_POPULATION`` (env) shrinks the population for CI smoke runs.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.arch import vliw4
from repro.gen import WorkloadPopulation
from repro.pipeline import CompilePipeline

from conftest import bench_metric, print_table, run_once, write_baseline

POPULATION_SIZE = int(os.environ.get("GEN_POPULATION", "100"))
SEED = 20260730
OPT_LEVEL = 2
BUDGET_KGATES = 32.0
KERNELS_PER_FAMILY_GAIN = 3

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_generated_population.json"


def _compile_sweep(pipeline, population, machine):
    start = time.perf_counter()
    for generated in population:
        pipeline.build(generated.kernel.source, machine,
                       name=generated.kernel.name, opt_level=OPT_LEVEL)
    return time.perf_counter() - start


def test_e11_generated_population(benchmark):
    def experiment():
        population = WorkloadPopulation.generate(POPULATION_SIZE, seed=SEED)
        machine = vliw4()
        pipeline = CompilePipeline()

        cold_s = _compile_sweep(pipeline, population, machine)
        warm_s = _compile_sweep(pipeline, population, machine)

        with population:
            validated = population.validate(pipeline=pipeline)
            report = population.report(
                budget=BUDGET_KGATES, engine="compiled",
                opt_level=OPT_LEVEL,
                kernels_per_family=KERNELS_PER_FAMILY_GAIN,
                pipeline=pipeline)

        summary = {
            "population": len(population),
            "families": len(population.families()),
            "seed": SEED,
            "valid_both_engines": sum(validated.values()),
            "cold_compile_s": round(cold_s, 4),
            "warm_compile_s": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 2) if warm_s > 0 else 0.0,
            "budget_kgates": BUDGET_KGATES,
            "mean_gain": round(
                sum(row["gain"] for row in report["families"])
                / max(1, len(report["families"])), 3),
        }
        return report["families"], summary

    rows, summary = run_once(benchmark, experiment)
    display = [{k: row[k] for k in
                ("family", "kernels", "mean_ilp_bound", "mean_memory_fraction",
                 "mean_branch_fraction", "base_time_us", "custom_time_us",
                 "gain", "custom_ops")} for row in rows]
    print_table(
        f"E11: generated population ({summary['population']} kernels, "
        f"budget {BUDGET_KGATES:.0f} kgates)", display)
    print(
        f"\nE11 summary: {summary['valid_both_engines']}/"
        f"{summary['population']} kernels bit-identical on both engines; "
        f"compile sweep cold {summary['cold_compile_s'] * 1e3:.0f} ms, warm "
        f"{summary['warm_compile_s'] * 1e3:.0f} ms "
        f"({summary['warm_speedup']}x); mean customization gain "
        f"{summary['mean_gain']}x across {summary['families']} families."
    )

    write_baseline(OUTPUT, "e11_generated_population", {
        "opt_level": OPT_LEVEL,
        "rows": rows,
        "summary": summary,
    }, metrics={
        "valid_fraction": bench_metric(
            summary["valid_both_engines"] / max(1, summary["population"]),
            kind="fidelity", floor=1.0),
        "families": bench_metric(summary["families"], kind="fidelity",
                                 floor=5, ceiling=5),
        "warm_speedup": bench_metric(summary["warm_speedup"], band=4.0,
                                     floor=3.0),
        "mean_gain": bench_metric(summary["mean_gain"], band=2.0,
                                  floor=0.99),
    }, shrunk=POPULATION_SIZE < 100)

    # Acceptance: the whole population is self-checking on both engines,
    # every family reports a characterization + gain record, warm compiles
    # reuse artifacts, and customization never makes a family slower.
    assert summary["valid_both_engines"] == summary["population"]
    assert summary["families"] == 5
    assert all(row["feasible"] for row in rows)
    assert all(row["gain"] >= 0.99 for row in rows)
    assert summary["warm_speedup"] >= 3.0
    if POPULATION_SIZE >= 100:
        assert summary["population"] >= 100
