"""E1 — Table 1 of the paper: Pentium II price vs. performance.

Regenerates the table exactly as printed (prices, Winstone, Quake II and
the two Perf/Price columns) and the premium analysis that the paper's
§1.4 argument rests on: the performance/price ratio falls sharply toward
the high end of the product line.
"""

from __future__ import annotations

from repro.econ import (
    TABLE1_PUBLISHED_RATIOS, analyze_premium, compute_table1,
    matches_published_ratios,
)

from conftest import print_table, run_once


def test_table1_price_performance(benchmark):
    def experiment():
        table = compute_table1()
        premium = analyze_premium()
        return table, premium

    table, premium = run_once(benchmark, experiment)

    print_table("E1 / Table 1: Pentium II price and performance (Oct 1998)", table)
    published = [
        {"winstone_per_dollar (paper)": row["winstone_per_dollar"],
         "quake_per_dollar (paper)": row["quake_per_dollar"]}
        for row in TABLE1_PUBLISHED_RATIOS
    ]
    print_table("E1: Perf/Price columns as published", published)
    print_table("E1: high-end premium analysis", [{
        "winstone perf/price spread (best/worst)": round(premium.winstone_ratio_spread, 2),
        "quake perf/price spread (best/worst)": round(premium.quake_ratio_spread, 2),
        "$/Winstone point (low end)": round(premium.marginal_cost_low, 1),
        "$/Winstone point (high end)": round(premium.marginal_cost_high, 1),
        "price ~ perf^k exponent": round(premium.price_performance_exponent, 2),
    }])

    assert matches_published_ratios()
    assert premium.winstone_ratio_spread > 2.0
    assert premium.marginal_cost_high > premium.marginal_cost_low
