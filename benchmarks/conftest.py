"""Shared helpers for the experiment benchmarks (E1-E8).

Each benchmark file regenerates one table of EXPERIMENTS.md: it runs the
relevant pipeline once under pytest-benchmark (pedantic mode, single
round — the interesting output is the table, not the wall-clock of the
harness itself) and prints the rows in a fixed-width format so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the experiment
tables directly.

Scale control is shared: ``pytest benchmarks/ --shrink`` runs every
benchmark at its CI smoke size (the option is declared in the repository
root conftest); :func:`shrink_knob` resolves one scale knob with the
precedence *env var override > --shrink smoke value > full value*, so
one flag shrinks the whole suite while a named variable can still pin a
single knob.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

import pytest

from repro.core import reset_global_library


@pytest.fixture(autouse=True)
def _clean_library():
    reset_global_library()
    yield
    reset_global_library()


def shrink_knob(config, name: str, full, smoke, cast=int):
    """Resolve one benchmark scale knob.

    ``name`` is an environment variable that always wins (CI pinning a
    single knob); otherwise ``--shrink`` selects ``smoke`` and a normal
    run gets ``full``.
    """
    value = os.environ.get(name)
    if value is not None and value != "":
        return cast(value)
    return smoke if config.getoption("--shrink") else full


@pytest.fixture
def shrunk(pytestconfig) -> bool:
    """True when the suite runs at CI smoke scale (``--shrink``)."""
    return bool(pytestconfig.getoption("--shrink"))


def print_table(title: str, rows: Sequence[Dict[str, object]]) -> None:
    """Print a list of dict rows as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows))
              for c in columns}
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
