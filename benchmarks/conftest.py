"""Shared helpers for the experiment benchmarks (E1-E8).

Each benchmark file regenerates one table of EXPERIMENTS.md: it runs the
relevant pipeline once under pytest-benchmark (pedantic mode, single
round — the interesting output is the table, not the wall-clock of the
harness itself) and prints the rows in a fixed-width format so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the experiment
tables directly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import pytest

from repro.core import reset_global_library


@pytest.fixture(autouse=True)
def _clean_library():
    reset_global_library()
    yield
    reset_global_library()


def print_table(title: str, rows: Sequence[Dict[str, object]]) -> None:
    """Print a list of dict rows as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows))
              for c in columns}
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
