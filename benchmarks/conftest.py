"""Shared helpers for the experiment benchmarks (E1-E8).

Each benchmark file regenerates one table of EXPERIMENTS.md: it runs the
relevant pipeline once under pytest-benchmark (pedantic mode, single
round — the interesting output is the table, not the wall-clock of the
harness itself) and prints the rows in a fixed-width format so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the experiment
tables directly.

Scale control is shared: ``pytest benchmarks/ --shrink`` runs every
benchmark at its CI smoke size (the option is declared in the repository
root conftest); :func:`shrink_knob` resolves one scale knob with the
precedence *env var override > --shrink smoke value > full value*, so
one flag shrinks the whole suite while a named variable can still pin a
single knob.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

import pytest

from repro.core import reset_global_library


@pytest.fixture(autouse=True)
def _clean_library():
    reset_global_library()
    yield
    reset_global_library()


def shrink_knob(config, name: str, full, smoke, cast=int):
    """Resolve one benchmark scale knob.

    ``name`` is an environment variable that always wins (CI pinning a
    single knob); otherwise ``--shrink`` selects ``smoke`` and a normal
    run gets ``full``.
    """
    value = os.environ.get(name)
    if value is not None and value != "":
        return cast(value)
    return smoke if config.getoption("--shrink") else full


@pytest.fixture
def shrunk(pytestconfig) -> bool:
    """True when the suite runs at CI smoke scale (``--shrink``)."""
    return bool(pytestconfig.getoption("--shrink"))


def print_table(title: str, rows: Sequence[Dict[str, object]]) -> None:
    """Print a list of dict rows as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), max(len(str(r.get(c, ""))) for r in rows))
              for c in columns}
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


#: BENCH_*.json baseline format version (experiment manifest schema).
BENCH_SCHEMA_VERSION = 1


def bench_metric(value, *, kind="perf", direction="higher", band=None,
                 floor=None, ceiling=None, slack=None):
    """Declare one gated metric: its value plus the tolerance next to it."""
    from repro.replay import metric_spec

    return metric_spec(value, kind=kind, direction=direction, band=band,
                       floor=floor, ceiling=ceiling, slack=slack)


def write_baseline(output, experiment: str, payload: Dict[str, object], *,
                   metrics: Dict[str, Dict[str, object]] = None,
                   shrunk: bool = False) -> None:
    """Write one schema-versioned BENCH baseline with env provenance.

    ``metrics`` carries the gated values with their tolerance declared in
    place (:func:`bench_metric`); ``python -m repro gate`` compares a
    fresh run against these.  ``shrunk`` records the run scale so the
    gate never holds a smoke run to full-run relative bands.
    """
    import json

    from repro.replay import capture_env, git_revision

    document = {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "experiment": experiment,
        "env": capture_env(),
        "git_rev": git_revision(),
        "shrunk": bool(shrunk),
        "metrics": dict(metrics or {}),
    }
    document.update(payload)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"baseline written to {os.path.basename(str(output))}")
