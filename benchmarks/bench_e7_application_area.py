"""E7 — §6.1: tailor to an application *area* under real-time objectives.

The original E7 summed independent per-kernel cycle counts to stand in
for "the application".  This version retires that hand-rolled
aggregation and runs *real* multi-kernel dataflow applications through
:mod:`repro.app`: seeded generated graphs (chain / fan-in / diamond)
whose nodes pass windows of data along typed edges, executed window by
window against an arrival period and a deadline.

Two tables come out:

* **per-machine real-time behaviour** — every application × preset
  machine pair, with deadline-miss rate, p50/p99 window latency, jitter
  and energy per window (every node of every window checked against the
  composed Python oracle);
* **objective winners** — the same weighted application mix explored
  over a design space once per objective.  The headline assertion is
  the ISSUE-9 acceptance criterion: optimizing for
  ``deadline_miss_rate`` returns a *different* winning machine than raw
  ``performance`` — once the deadline is met, energy decides.

Results go to ``BENCH_application_rt.json`` at the repository root.
"""

from __future__ import annotations

from pathlib import Path

from repro.api import Session
from repro.arch import dsp_core, risc_baseline, vliw2, vliw4
from repro.app import run_application
from repro.dse import AppEvaluator, ApplicationMix, DesignSpace, Explorer
from repro.gen import APP_TOPOLOGIES, sample_application

from conftest import (
    bench_metric, print_table, run_once, shrink_knob, write_baseline,
)

#: seed shared with tests/_shared.py: the same applications the
#: differential engine tests prove bit-identical across engines.
APP_SEED = 11

#: the real-time envelope: one 32-sample window every 30 us, finished
#: within 30 us (tight enough that narrow machines miss).
PERIOD_US = 30.0
DEADLINE_US = 30.0

MACHINES = (risc_baseline(), vliw2(), vliw4(), dsp_core())

OBJECTIVES_TO_COMPARE = ("performance", "deadline_miss_rate",
                         "p99_latency", "energy_per_window")

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_application_rt.json"


def _applications(windows: int):
    return [sample_application(topology, APP_SEED, windows=windows,
                               period_us=PERIOD_US, deadline_us=DEADLINE_US)
            for topology in APP_TOPOLOGIES]


def test_e7_application_rt(benchmark, pytestconfig):
    windows = shrink_knob(pytestconfig, "E7_WINDOWS", 8, 4)
    apps = _applications(windows)
    session = Session(name="bench-e7")
    # the chain is the product's hot path; the others ride along.
    mix = ApplicationMix("rt_area", [(apps[0], 3.0)] +
                         [(app, 1.0) for app in apps[1:]])
    space = DesignSpace.small()

    def experiment():
        reports = {}
        for app in apps:
            for machine in MACHINES:
                reports[(app.name, machine.name)] = run_application(
                    app, machine, engine="compiled",
                    pipeline=session.pipeline)
        results = {}
        for objective in OBJECTIVES_TO_COMPARE:
            evaluator = AppEvaluator(mix, engine="compiled",
                                     pipeline=session.pipeline)
            explorer = Explorer(evaluator, objective=objective,
                                batch=session.batch_evaluator(evaluator))
            results[objective] = explorer.exhaustive(space)
        return reports, results

    reports, results = run_once(benchmark, experiment)

    machine_rows = []
    for app in apps:
        for machine in MACHINES:
            row = reports[(app.name, machine.name)].summary_row()
            del row["engine"], row["fidelity"]
            machine_rows.append(row)
    print_table(
        f"E7: per-machine real-time behaviour "
        f"({windows} windows, deadline {DEADLINE_US}us)", machine_rows)

    winner_rows = []
    for objective, result in results.items():
        best = result.best
        row = best.summary_row()
        winner_rows.append({
            "objective": objective,
            "winner": best.machine.name,
            "miss_rate": row["miss_rate"],
            "p50_us": row["p50_us"],
            "p99_us": row["p99_us"],
            "jitter_us": row["jitter_us"],
            "energy_per_window_uj": row["energy_per_window_uj"],
            "points": result.points_evaluated,
        })
    print_table("E7: objective winners over the design space", winner_rows)

    perf_winner = results["performance"].best.machine.name
    deadline_winner = results["deadline_miss_rate"].best.machine.name
    print(f"\nE7 summary: performance picks {perf_winner}, "
          f"deadline_miss_rate picks {deadline_winner} "
          f"({'different' if perf_winner != deadline_winner else 'same'} "
          f"machines) over {results['performance'].points_evaluated} points.")

    write_baseline(OUTPUT, "e7_application_rt", {
        "seed": APP_SEED,
        "windows": windows,
        "period_us": PERIOD_US,
        "deadline_us": DEADLINE_US,
        "applications": [app.name for app in apps],
        "fingerprints": {app.name: app.fingerprint() for app in apps},
        "machine_rows": machine_rows,
        "objective_winners": winner_rows,
        "batch_stats": None,
    }, metrics={
        "correct_fraction": bench_metric(
            sum(1 for row in machine_rows if row["correct"])
            / max(1, len(machine_rows)), kind="fidelity", floor=1.0),
        "winners_differ": bench_metric(
            1.0 if perf_winner != deadline_winner else 0.0,
            kind="fidelity", floor=1.0),
    }, shrunk=bool(pytestconfig.getoption("--shrink")))

    # Every node of every window on every machine matched its oracle.
    assert all(row["correct"] for row in machine_rows)
    # Load variation shows up as genuine jitter somewhere in the table.
    assert any(row["jitter_us"] > 0 for row in machine_rows)
    # Wider machines finish windows faster than the scalar baseline.
    for app in apps:
        assert (reports[(app.name, "vliw4")].p99_latency_us
                < reports[(app.name, "risc32")].p99_latency_us)
    # The ISSUE-9 acceptance criterion: real-time objectives change the
    # design-space answer.
    assert perf_winner != deadline_winner, (
        f"deadline_miss_rate and performance picked the same machine "
        f"({perf_winner}); the real-time objective should trade raw "
        f"speed for energy once the deadline is met")
