"""E7 — §6.1: tailor to an application area, not an application.

The processor is frozen long before the software: customizing for exactly
today's kernel risks customizing for the wrong thing.  This experiment
customizes a 4-issue VLIW two ways — for a single kernel versus for the
whole cellphone-style mix — then measures every kernel of the area
(including ones the single-kernel customization never saw) on both, and
feeds the results through the development-cycle risk model to find the
workload-churn level at which area-tailoring wins.
"""

from __future__ import annotations

from repro.arch import vliw4
from repro.backend import compile_module
from repro.core import IsaCustomizer, SelectionConfig, EnumerationConfig
from repro.core.library import global_extension_library
from repro.econ import DevelopmentCycleModel, KernelOutcome
from repro.frontend import compile_c
from repro.opt import optimize
from repro.sim import CycleSimulator
from repro.workloads import get_kernel, get_mix

from conftest import print_table, run_once

MIX = "cellphone"
TARGET_KERNEL = "viterbi_acs"       # what the single-application design targets
SIZE = 32
SEED = 1234  # explicit input seed: sweeps are bit-reproducible end to end
BUDGET = 40.0


def _modules_for_mix(mix):
    modules = {}
    for kernel, weight in mix.kernels():
        module = compile_c(kernel.source, module_name=kernel.name)
        optimize(module, level=3)
        modules[kernel.name] = (module, weight)
    return modules


def _measure(machine, module, kernel):
    compiled, _ = compile_module(module, machine)
    args = kernel.arguments(SIZE, seed=SEED)
    result = CycleSimulator(compiled).run(
        kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
    assert result.value == kernel.expected(args)
    return result.cycles


def test_e7_application_area(benchmark):
    mix = get_mix(MIX)

    def experiment():
        base = vliw4()

        # Baseline cycles for every kernel on the uncustomized machine.
        baseline_modules = _modules_for_mix(mix)
        baseline = {name: _measure(base, module, get_kernel(name))
                    for name, (module, _w) in baseline_modules.items()}

        # (a) customize for one application only.
        exact_customizer = IsaCustomizer(
            base, enumeration=EnumerationConfig(max_outputs=1),
            selection_config=SelectionConfig(area_budget_kgates=BUDGET))
        exact_modules = _modules_for_mix(mix)
        exact_result = exact_customizer.customize(
            exact_modules[TARGET_KERNEL][0], name="vliw4+exact")
        # Apply its (narrow) extension library to the rest of the area.
        for name, (module, _w) in exact_modules.items():
            if name != TARGET_KERNEL:
                exact_customizer.apply_to(module, exact_result.machine)
        exact_cycles = {name: _measure(exact_result.machine, module, get_kernel(name))
                        for name, (module, _w) in exact_modules.items()}

        # (b) customize for the whole application area (weighted mix).
        area_customizer = IsaCustomizer(
            base, enumeration=EnumerationConfig(max_outputs=1),
            selection_config=SelectionConfig(area_budget_kgates=BUDGET))
        area_modules = _modules_for_mix(mix)
        weighted = [(module, weight) for module, weight in area_modules.values()]
        area_result = area_customizer.customize_for_area(weighted, name="vliw4+area")
        area_cycles = {name: _measure(area_result.machine, module, get_kernel(name))
                       for name, (module, _w) in area_modules.items()}

        return baseline, exact_cycles, area_cycles, exact_result, area_result

    baseline, exact_cycles, area_cycles, exact_result, area_result = run_once(
        benchmark, experiment)

    rows = []
    for name in mix.names():
        rows.append({
            "kernel": name,
            "targeted by exact design": name == TARGET_KERNEL,
            "baseline cycles": baseline[name],
            "exact-design cycles": exact_cycles[name],
            "area-design cycles": area_cycles[name],
            "exact speedup": round(baseline[name] / exact_cycles[name], 2),
            "area speedup": round(baseline[name] / area_cycles[name], 2),
        })
    print_table(f"E7: exact vs application-area customization ({MIX} mix)", rows)

    weights = dict(mix.weights)
    exact_outcomes = []
    area_outcomes = []
    for name in mix.names():
        exact_outcomes.append(KernelOutcome(
            name,
            speedup_if_targeted=baseline[name] / exact_cycles[name],
            speedup_if_untargeted=1.0))
        area_outcomes.append(KernelOutcome(
            name,
            speedup_if_targeted=baseline[name] / area_cycles[name],
            speedup_if_untargeted=min(baseline[name] / area_cycles[name], 1.15)))
    model = DevelopmentCycleModel(freeze_to_ship_months=12, monthly_change_rate=0.05)
    survival = model.survival_probability()
    expected_rows = [{
        "design": "exact (single kernel)",
        "expected speedup @ survival": round(model.expected_speedup(
            exact_outcomes, list(weights.values()), survival), 3),
        "custom ops": exact_result.report.operations_selected,
    }, {
        "design": "area (weighted mix)",
        "expected speedup @ survival": round(model.expected_speedup(
            area_outcomes, list(weights.values()), survival), 3),
        "custom ops": area_result.report.operations_selected,
    }]
    print_table(f"E7: expected speedup under workload churn "
                f"(12-month freeze, survival {survival:.2f})", expected_rows)

    # Shape checks: the area design helps the whole mix; the exact design is
    # at least as good on its target kernel and no better on the others.
    area_mean = sum(r["area speedup"] for r in rows) / len(rows)
    exact_offtarget = [r["exact speedup"] for r in rows if not r["targeted by exact design"]]
    assert area_mean > 1.05
    assert rows and max(exact_offtarget) <= max(r["area speedup"] for r in rows) + 0.05
    assert (expected_rows[1]["expected speedup @ survival"]
            >= expected_rows[0]["expected speedup @ survival"] - 0.05)
