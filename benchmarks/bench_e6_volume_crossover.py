"""E6 — Barrier 3 (§4): can low-volume customized processors be competitive?

Sweeps product volume and compares the per-unit price of (a) buying the
mass-market high-performance embedded processor (huge cumulative volume,
merchant margin, no NRE for the buyer) against (b) building a customized
SoC core (the product pays the NRE, internal cost-plus margin).  The
crossover volume is reported, and the §4.1 system-on-chip comparison shows
integration flipping the answer at product level even below the chip-level
crossover.
"""

from __future__ import annotations

from repro.econ import (
    ChipProject, cost_vs_volume, crossover_volume, integration_advantage,
    reference_set_top_design, unit_price,
)

from conftest import print_table, run_once

VOLUMES = [10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
           1_000_000, 2_000_000, 5_000_000]


def test_e6_volume_crossover(benchmark):
    custom = ChipProject("custom_soc_core", core_kgates=180, sram_kbytes=24,
                         nre_usd=2_500_000, margin=1.2)
    mass = ChipProject("mass_market_cpu", core_kgates=650, sram_kbytes=32,
                       nre_usd=0.0, cumulative_volume=20_000_000, margin=3.0)

    def experiment():
        rows = []
        for volume in VOLUMES:
            custom_at = ChipProject(custom.name, custom.core_kgates, custom.sram_kbytes,
                                    custom.nre_usd, volume, None, custom.margin)
            mass_at = ChipProject(mass.name, mass.core_kgates, mass.sram_kbytes,
                                  0.0, volume, mass.cumulative_volume, mass.margin)
            custom_price = unit_price(custom_at)
            mass_price = unit_price(mass_at)
            rows.append({
                "volume": volume,
                "custom SoC $/unit": round(custom_price, 2),
                "mass-market $/unit": round(mass_price, 2),
                "custom wins": custom_price <= mass_price,
            })
        crossover = crossover_volume(custom, mass, VOLUMES)
        soc_rows = [integration_advantage(reference_set_top_design(volume=v), 35.0)
                    for v in (100_000, 500_000, 2_000_000)]
        return rows, crossover, soc_rows

    rows, crossover, soc_rows = run_once(benchmark, experiment)

    print_table("E6: per-unit price vs product volume", rows)
    print(f"\nE6: chip-level crossover volume (custom cheaper than mass-market): "
          f"{crossover:,} units" if crossover else "\nE6: no crossover in range")
    print_table("E6 / §4.1: discrete processor vs SoC integration at product level",
                soc_rows)

    assert crossover is not None
    assert rows[0]["custom SoC $/unit"] > rows[0]["mass-market $/unit"]
    assert rows[-1]["custom SoC $/unit"] < rows[-1]["mass-market $/unit"]
    assert all(row["soc_wins"] for row in soc_rows)
