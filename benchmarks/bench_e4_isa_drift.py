"""E4 — ISA drift (§2): running yesterday's binary on today's family member.

A program is compiled and ISA-customized for family member "gen1".  The
family then drifts: "gen2" drops gen1's custom operations and adds its own
budget headroom.  The table compares four ways of getting the old binary
onto gen2 — run-as-is is impossible (incompatible), static translation,
dynamic re-optimization, native recompile — plus the amortisation curve of
the one-time translation costs.
"""

from __future__ import annotations

from repro.arch import vliw4
from repro.backend import compile_module
from repro.core import customize_isa
from repro.drift import BinaryTranslator, StagedExecutionModel, assess
from repro.frontend import compile_c
from repro.opt import optimize
from repro.sim import CycleSimulator
from repro.workloads import get_kernel

from conftest import print_table, run_once

KERNEL = "saturated_add"
SIZE = 64
SEED = 1234  # explicit input seed: sweeps are bit-reproducible end to end


def test_e4_isa_drift(benchmark):
    kernel = get_kernel(KERNEL)
    args = kernel.arguments(SIZE, seed=SEED)
    run_args = lambda: tuple(list(a) if isinstance(a, list) else a for a in args)
    expected = kernel.expected(args)

    def experiment():
        # Native gen1 build (customized).
        module = compile_c(kernel.source, module_name=KERNEL)
        optimize(module, level=3)
        gen1 = vliw4("gen1")
        customization = customize_isa(module, gen1, area_budget_kgates=40.0,
                                      name="gen1+custom")
        gen1_custom = customization.machine
        gen1_compiled, _ = compile_module(module, gen1_custom)
        native_gen1 = CycleSimulator(gen1_compiled).run(kernel.entry, *run_args())
        assert native_gen1.value == expected

        # The family drifts: gen2 is a plain 4-issue member without gen1's ops.
        gen2 = vliw4("gen2")
        verdict = assess(gen1_custom, gen2)

        translator = BinaryTranslator()
        translated, static_report = translator.translate(gen1_compiled, gen2)
        static_run = CycleSimulator(translated).run(kernel.entry, *run_args())
        assert static_run.value == expected

        reoptimized, dyn_report = translator.translate(gen1_compiled, gen2,
                                                       reoptimize=True)
        dynamic_run = CycleSimulator(reoptimized).run(kernel.entry, *run_args())
        assert dynamic_run.value == expected

        # Native recompile for gen2 from source.
        fresh = compile_c(kernel.source, module_name=KERNEL)
        optimize(fresh, level=3)
        gen2_compiled, _ = compile_module(fresh, gen2)
        native_gen2 = CycleSimulator(gen2_compiled).run(kernel.entry, *run_args())
        assert native_gen2.value == expected

        return (native_gen1, static_run, dynamic_run, native_gen2,
                static_report, dyn_report, verdict)

    (native_gen1, static_run, dynamic_run, native_gen2,
     static_report, dyn_report, verdict) = run_once(benchmark, experiment)

    rows = [
        {"path": "native on gen1 (customized)", "cycles/run": native_gen1.cycles,
         "vs gen2 native": round(native_gen1.cycles / native_gen2.cycles, 2),
         "one-time cost (cycles)": 0},
        {"path": "static translation to gen2", "cycles/run": static_run.cycles,
         "vs gen2 native": round(static_run.cycles / native_gen2.cycles, 2),
         "one-time cost (cycles)": static_report.translation_overhead_cycles},
        {"path": "dynamic re-optimization on gen2", "cycles/run": dynamic_run.cycles,
         "vs gen2 native": round(dynamic_run.cycles / native_gen2.cycles, 2),
         "one-time cost (cycles)": dyn_report.translation_overhead_cycles},
        {"path": "native recompile for gen2", "cycles/run": native_gen2.cycles,
         "vs gen2 native": 1.0, "one-time cost (cycles)": 0},
    ]
    print_table(f"E4: moving a gen1 binary to gen2 ({KERNEL})", rows)
    print(f"\nE4: compatibility verdict gen1+custom -> gen2: remedy '{verdict.remedy}', "
          f"binary compatible: {verdict.runs_unmodified}; "
          f"{static_report.custom_ops_expanded} custom-op sites expanded.")

    model = StagedExecutionModel(
        native_cycles=native_gen2.cycles,
        translated_cycles=static_run.cycles,
        translation_cost=static_report.translation_overhead_cycles,
        reoptimization_cost=dyn_report.translation_overhead_cycles,
    )
    amortisation = [{"runs": runs,
                     "avg overhead vs native": round(model.average_overhead(runs), 2)}
                    for runs in (1, 3, 10, 30, 100, 1000)]
    print_table("E4: translation-cost amortisation", amortisation)

    assert not verdict.runs_unmodified          # drift really did break compatibility
    assert static_run.cycles >= native_gen2.cycles   # translated code is no faster than native
    assert model.average_overhead(1000) < model.average_overhead(1)
