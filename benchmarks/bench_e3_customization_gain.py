"""E3 — customization gains: ISA-customized machine vs. the generic baseline.

For each kernel, the customizer is given a 40-kgate custom-datapath budget
on top of the 4-issue VLIW; the table reports cycles, speedup, energy and
the area added.  This is the paper's central promise quantified: visible,
application-derived ISA changes buy performance at small incremental area.
"""

from __future__ import annotations

from repro.arch import estimate_area, vliw4
from repro.backend import compile_module
from repro.core import reset_global_library
from repro.frontend import compile_c
from repro.opt import optimize
from repro.sim import CycleSimulator
from repro.toolchain import Toolchain
from repro.workloads import get_kernel

from conftest import print_table, run_once

KERNELS = ["saturated_add", "viterbi_acs", "alpha_blend", "rgb_to_gray",
           "fir_filter", "crc32"]
SIZE = 48
BUDGET_KGATES = 40.0
SEED = 1234  # explicit input seed: sweeps are bit-reproducible end to end


def run_kernel(kernel_name):
    reset_global_library()
    kernel = get_kernel(kernel_name)
    args = kernel.arguments(SIZE, seed=SEED)
    run_args = lambda: tuple(list(a) if isinstance(a, list) else a for a in args)
    expected = kernel.expected(args)

    base_toolchain = Toolchain(vliw4(), opt_level=3)
    module = base_toolchain.frontend(kernel.source, kernel.name)

    base_artifacts = base_toolchain.build(module.clone())
    base = base_toolchain.run(base_artifacts, kernel.entry, *run_args())
    assert base.value == expected

    custom_toolchain = base_toolchain.customize(
        module, area_budget_kgates=BUDGET_KGATES,
        profile_entry=kernel.entry, profile_args=run_args())
    custom_artifacts = custom_toolchain.build(module)
    custom = custom_toolchain.run(custom_artifacts, kernel.entry, *run_args())
    assert custom.value == expected

    report = custom_toolchain.last_customization.report
    return {
        "kernel": kernel_name,
        "base cycles": base.cycles,
        "custom cycles": custom.cycles,
        "speedup": round(base.cycles / custom.cycles, 2),
        "custom ops": report.operations_selected,
        "area added (kgates)": round(report.area_added_kgates, 1),
        "base energy (uJ)": round(base.energy_uj, 1),
        "custom energy (uJ)": round(custom.energy_uj, 1),
    }


def test_e3_customization_gain(benchmark):
    rows = run_once(benchmark, lambda: [run_kernel(name) for name in KERNELS])
    print_table(f"E3: ISA customization on vliw4 (budget {BUDGET_KGATES:.0f} kgates)", rows)

    base_area = estimate_area(vliw4()).core
    speedups = [r["speedup"] for r in rows]
    mean_speedup = sum(speedups) / len(speedups)
    mean_area = sum(r["area added (kgates)"] for r in rows) / len(rows)
    print(f"\nE3 summary: mean speedup {mean_speedup:.2f}x (max {max(speedups):.2f}x) "
          f"for {mean_area:.1f} kgates added to a {base_area:.0f}-kgate core "
          f"({100 * mean_area / base_area:.1f}% area).")

    assert mean_speedup > 1.1
    assert all(r["speedup"] >= 0.99 for r in rows)
    assert all(r["area added (kgates)"] <= BUDGET_KGATES + 1e-6 for r in rows)
