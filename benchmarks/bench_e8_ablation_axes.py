"""E8 — §1.2: the visible-customization axes, ablated one at a time.

Starting from the 4-issue VLIW reference, each architecturally visible
change the paper enumerates (issue width, register count, clusters,
specialised units, latencies, instruction compression, custom operations)
is varied in isolation and the video workload mix re-measured.
"""

from __future__ import annotations

from repro.arch import vliw4
from repro.dse import Evaluator, run_ablation
from repro.workloads import get_mix

from conftest import print_table, run_once

MIX = "video"
SIZE = 24


def test_e8_ablation_axes(benchmark):
    evaluator = Evaluator(get_mix(MIX), size=SIZE, opt_level=3)

    rows = run_once(benchmark,
                    lambda: run_ablation(evaluator, vliw4(), custom_budget=40.0))

    table = [row.as_dict() for row in rows]
    print_table(f"E8: per-axis ablation from vliw4 ({MIX} mix)", table)

    by_axis = {}
    for row in rows:
        if row.axis == "reference" or not row.evaluation.feasible:
            continue
        by_axis.setdefault(row.axis, []).append(row.speedup)
    summary = [{"axis": axis,
                "best speedup": round(max(speedups), 3),
                "worst speedup": round(min(speedups), 3)}
               for axis, speedups in sorted(by_axis.items())]
    print_table("E8: best/worst effect per customization axis", summary)

    reference = next(r for r in rows if r.axis == "reference")
    assert reference.evaluation.feasible
    # Every axis was measured and produced a feasible machine somewhere.
    assert {"issue_width", "registers", "fu_mix", "latency", "encoding",
            "custom_ops"} <= set(by_axis)
    # Custom operations and issue width should both matter on this mix.
    assert max(by_axis["custom_ops"]) > 1.0
    assert max(by_axis["issue_width"]) > 1.0
